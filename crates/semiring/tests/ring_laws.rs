//! Property tests for the semi-ring laws (paper Table 1, Definition 1,
//! Appendix B) on the variance, class-count and gradient rings.
//!
//! Every ring JoinBoost compiles to SQL must satisfy:
//! * `⊕` is commutative and associative with identity `0̄`,
//! * `⊗` is commutative and associative with identity `1̄` and
//!   annihilator `0̄`,
//! * `⊗` is **bilinear** over `⊕` (distributivity plus scalar
//!   homogeneity) — the property that lets joins compile to `+`/`*`
//!   arithmetic over component columns,
//! * for rings powering factorized residual updates, the lift is
//!   **addition-to-multiplication preserving** (Definition 1):
//!   `lift(d₁ + d₂) = lift(d₁) ⊗ lift(d₂)`.

use proptest::prelude::*;

use joinboost_semiring::ring::{MulTerm, SemiRing};
use joinboost_semiring::{ClassCountRing, GradientRing, VarianceRing};

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())))
}

fn scale(s: f64, v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| s * x).collect()
}

/// `⊕` laws: commutative, associative, identity `0̄`.
fn check_additive_laws<R: SemiRing>(ring: &R, a: &[f64], b: &[f64], c: &[f64]) {
    assert!(close(&ring.add(a, b), &ring.add(b, a)), "⊕ commutativity");
    assert!(
        close(&ring.add(&ring.add(a, b), c), &ring.add(a, &ring.add(b, c))),
        "⊕ associativity"
    );
    assert!(close(&ring.add(a, &ring.zero()), a), "⊕ identity");
}

/// `⊗` laws: commutative, associative, identity `1̄`, annihilator `0̄`.
fn check_multiplicative_laws<R: SemiRing>(ring: &R, a: &[f64], b: &[f64], c: &[f64]) {
    assert!(close(&ring.mul(a, b), &ring.mul(b, a)), "⊗ commutativity");
    assert!(
        close(&ring.mul(&ring.mul(a, b), c), &ring.mul(a, &ring.mul(b, c))),
        "⊗ associativity"
    );
    assert!(close(&ring.mul(a, &ring.one()), a), "⊗ identity");
    assert!(
        close(&ring.mul(a, &ring.zero()), &ring.zero()),
        "⊗ annihilator"
    );
}

/// Bilinearity of `⊗` over `⊕`: distributivity in each argument plus
/// scalar homogeneity, i.e. `a ⊗ (βb ⊕ γc) = β(a ⊗ b) ⊕ γ(a ⊗ c)`.
fn check_bilinearity<R: SemiRing>(
    ring: &R,
    a: &[f64],
    b: &[f64],
    c: &[f64],
    beta: f64,
    gamma: f64,
) {
    let rhs = ring.add(
        &scale(beta, &ring.mul(a, b)),
        &scale(gamma, &ring.mul(a, c)),
    );
    let lhs = ring.mul(a, &ring.add(&scale(beta, b), &scale(gamma, c)));
    assert!(close(&lhs, &rhs), "⊗ bilinearity (right argument)");
    let lhs_l = ring.mul(&ring.add(&scale(beta, b), &scale(gamma, c)), a);
    assert!(close(&lhs_l, &rhs), "⊗ bilinearity (left argument)");
}

/// The declared multiplication table must be what `mul` evaluates —
/// guards against the SQL compiler (which reads `mul_terms`) and the
/// numeric path drifting apart.
fn check_table_consistency<R: SemiRing>(ring: &R, a: &[f64], b: &[f64]) {
    let table: Vec<Vec<MulTerm>> = ring.mul_terms();
    let manual: Vec<f64> = table
        .iter()
        .map(|terms| {
            terms
                .iter()
                .map(|t| t.coeff * a[t.left] * b[t.right])
                .sum::<f64>()
        })
        .collect();
    assert!(close(&manual, &ring.mul(a, b)), "mul_terms/mul agreement");
    assert_eq!(
        table.len(),
        ring.components().len(),
        "one output term list per component"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn variance_ring_laws(
        vals in prop::collection::vec(-10.0f64..10.0, 9),
        beta in -3.0f64..3.0,
        gamma in -3.0f64..3.0,
    ) {
        let ring = VarianceRing;
        let (a, b, c) = (&vals[0..3], &vals[3..6], &vals[6..9]);
        check_additive_laws(&ring, a, b, c);
        check_multiplicative_laws(&ring, a, b, c);
        check_bilinearity(&ring, a, b, c, beta, gamma);
        check_table_consistency(&ring, a, b);
    }

    #[test]
    fn gradient_ring_laws(
        vals in prop::collection::vec(-10.0f64..10.0, 6),
        beta in -3.0f64..3.0,
        gamma in -3.0f64..3.0,
    ) {
        let ring = GradientRing;
        let (a, b, c) = (&vals[0..2], &vals[2..4], &vals[4..6]);
        check_additive_laws(&ring, a, b, c);
        check_multiplicative_laws(&ring, a, b, c);
        check_bilinearity(&ring, a, b, c, beta, gamma);
        check_table_consistency(&ring, a, b);
    }

    #[test]
    fn class_count_ring_laws(
        vals in prop::collection::vec(-10.0f64..10.0, 15),
        beta in -3.0f64..3.0,
        gamma in -3.0f64..3.0,
    ) {
        let ring = ClassCountRing::new(4);
        let (a, b, c) = (&vals[0..5], &vals[5..10], &vals[10..15]);
        check_additive_laws(&ring, a, b, c);
        check_multiplicative_laws(&ring, a, b, c);
        check_bilinearity(&ring, a, b, c, beta, gamma);
        check_table_consistency(&ring, a, b);
    }

    /// Definition 1 for the variance ring: `lift(d₁+d₂) = lift(d₁) ⊗
    /// lift(d₂)` — the identity enabling factorized residual updates.
    #[test]
    fn variance_lift_preserves_addition(d1 in -100.0f64..100.0, d2 in -100.0f64..100.0) {
        let ring = VarianceRing;
        let lhs = ring.lift(d1 + d2);
        let rhs = ring.mul(&ring.lift(d1), &ring.lift(d2));
        prop_assert!(close(&lhs, &rhs), "lift({d1} + {d2}): {lhs:?} != {rhs:?}");
        prop_assert!(ring.is_add_to_mul_preserving(&[(d1, d2)]));
    }

    /// Definition 1 for the gradient ring with the first-order lift
    /// `lift(d) = (1, d)`.
    #[test]
    fn gradient_lift_preserves_addition(d1 in -100.0f64..100.0, d2 in -100.0f64..100.0) {
        let ring = GradientRing;
        let lhs = ring.lift(d1 + d2);
        let rhs = ring.mul(&ring.lift(d1), &ring.lift(d2));
        prop_assert!(close(&lhs, &rhs), "lift({d1} + {d2}): {lhs:?} != {rhs:?}");
        prop_assert!(ring.is_add_to_mul_preserving(&[(d1, d2)]));
    }

    /// The class-count lift marks a class indicator, so it must NOT be
    /// addition-to-multiplication preserving: classification boosting
    /// goes through the gradient ring instead (Appendix B).
    #[test]
    fn class_count_lift_is_not_addition_preserving(
        j1 in 0i64..2,
        j2 in 0i64..2,
    ) {
        let ring = ClassCountRing::new(5);
        prop_assert!(!ring.is_add_to_mul_preserving(&[(j1 as f64, j2 as f64)]));
    }

    /// Aggregation via `sum_lifted` is the `⊕`-fold of lifts — the
    /// GROUP-BY-to-SUM mapping the SQL compiler relies on.
    #[test]
    fn sum_lifted_is_fold_of_lifts(ys in prop::collection::vec(-50.0f64..50.0, 0..30)) {
        let ring = VarianceRing;
        let agg = ring.sum_lifted(ys.iter());
        let mut manual = ring.zero();
        for &y in &ys {
            manual = ring.add(&manual, &ring.lift(y));
        }
        prop_assert!(close(&agg, &manual));
        prop_assert!((agg[0] - ys.len() as f64).abs() < 1e-9);
    }
}
