//! Commutative semi-rings for factorized tree learning (paper Table 1,
//! Definition 1 and Appendix B).
//!
//! Factorized ML annotates every tuple with a semi-ring element; group-by
//! translates to `⊕` and join to `⊗`, which lets aggregations be pushed
//! through joins (message passing). This crate provides:
//!
//! * [`ring`] — the semi-ring abstraction. Every ring used by JoinBoost is
//!   *componentwise-additive and bilinear in `⊗`*, so a ring is fully
//!   described by its component names, its `1̄` element, its lift, and a
//!   bilinear multiplication table. That same description is what the SQL
//!   compiler uses to turn `⊗` into arithmetic expressions.
//! * the **variance semi-ring** `(c, s, q)` for regression (`rmse`), the
//!   **class-count semi-ring** `(c, c₁..c_k)` for classification, and the
//!   **gradient semi-ring** `(h, g)` for second-order gradient boosting
//!   (Appendix B, Table 2);
//! * the **addition-to-multiplication-preserving** property
//!   (Definition 1): `lift(d₁+d₂) = lift(d₁) ⊗ lift(d₂)`, the key to
//!   factorized residual updates on galaxy schemas;
//! * [`criteria`] — split criteria computed from aggregated annotations:
//!   reduction in variance, second-order gain with `λ`/`α` regularization,
//!   Gini, entropy and chi-square (Appendix A);
//! * [`loss`] — the loss functions of Table 3 with their gradients,
//!   Hessians and leaf-prediction rules.

pub mod criteria;
pub mod loss;
pub mod ring;

pub use criteria::{
    chi_square, entropy, gini, leaf_weight, second_order_gain, variance, variance_reduction,
};
pub use loss::Objective;
pub use ring::{ClassCountRing, GradientRing, SemiRing, VarianceRing};
