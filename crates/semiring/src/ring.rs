//! The semi-ring abstraction and the three rings JoinBoost uses.
//!
//! All rings here share two structural properties that the paper's SQL
//! compilation relies on:
//!
//! 1. `⊕` is componentwise addition of the annotation vector — so a
//!    `GROUP BY` maps to one `SUM(..)` per component;
//! 2. `⊗` is *bilinear*: every output component is a weighted sum of
//!    products of one left and one right component — so a join maps to
//!    simple `+`/`*` arithmetic over the component columns.
//!
//! A ring therefore only needs to declare its component names, its unit
//! element, its `lift` and its multiplication table; numeric `add`/`mul`
//! and the SQL compilation both derive from that declaration.

/// One term of a bilinear product: `coeff * left[l] * right[r]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulTerm {
    pub left: usize,
    pub right: usize,
    pub coeff: f64,
}

impl MulTerm {
    pub const fn new(left: usize, right: usize, coeff: f64) -> Self {
        MulTerm { left, right, coeff }
    }
}

/// A commutative semi-ring over `Vec<f64>` annotations with componentwise
/// `⊕` and bilinear `⊗`.
pub trait SemiRing {
    /// Component (column suffix) names, e.g. `["c", "s", "q"]`.
    fn components(&self) -> Vec<String>;

    /// The `1̄` element (annotation of tuples in non-target relations).
    fn one(&self) -> Vec<f64>;

    /// The `0̄` element.
    fn zero(&self) -> Vec<f64> {
        vec![0.0; self.components().len()]
    }

    /// The bilinear multiplication table: `mul_terms()[k]` lists the terms
    /// whose sum is output component `k`.
    fn mul_terms(&self) -> Vec<Vec<MulTerm>>;

    /// Lift a target value into the ring.
    fn lift(&self, y: f64) -> Vec<f64>;

    /// `⊕`: componentwise addition.
    fn add(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    /// `⊗`: evaluate the bilinear table.
    fn mul(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        self.mul_terms()
            .iter()
            .map(|terms| terms.iter().map(|t| t.coeff * a[t.left] * b[t.right]).sum())
            .collect()
    }

    /// Aggregate (`⊕`-fold) a sequence of lifted values.
    fn sum_lifted<'a>(&self, ys: impl IntoIterator<Item = &'a f64>) -> Vec<f64> {
        let mut acc = self.zero();
        for &y in ys {
            let l = self.lift(y);
            for (a, b) in acc.iter_mut().zip(&l) {
                *a += b;
            }
        }
        acc
    }

    /// Does `lift` preserve addition as multiplication (Definition 1):
    /// `lift(d1 + d2) = lift(d1) ⊗ lift(d2)`? Checked numerically on the
    /// given sample points; rings that satisfy it support factorized
    /// residual updates over galaxy schemas.
    fn is_add_to_mul_preserving(&self, samples: &[(f64, f64)]) -> bool {
        samples.iter().all(|&(d1, d2)| {
            let lhs = self.lift(d1 + d2);
            let rhs = self.mul(&self.lift(d1), &self.lift(d2));
            lhs.iter()
                .zip(&rhs)
                .all(|(a, b)| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())))
        })
    }
}

/// Variance semi-ring `(c, s, q)` (paper Table 1):
///
/// * `lift(y) = (1, y, y²)`
/// * `(c₁,s₁,q₁) ⊗ (c₂,s₂,q₂) = (c₁c₂, s₁c₂+s₂c₁, q₁c₂+q₂c₁+2s₁s₂)`
///
/// Supports the `rmse` criterion, and is addition-to-multiplication
/// preserving — the property enabling factorized gradient boosting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarianceRing;

impl SemiRing for VarianceRing {
    fn components(&self) -> Vec<String> {
        vec!["c".into(), "s".into(), "q".into()]
    }

    fn one(&self) -> Vec<f64> {
        vec![1.0, 0.0, 0.0]
    }

    fn mul_terms(&self) -> Vec<Vec<MulTerm>> {
        vec![
            vec![MulTerm::new(0, 0, 1.0)],
            vec![MulTerm::new(1, 0, 1.0), MulTerm::new(0, 1, 1.0)],
            vec![
                MulTerm::new(2, 0, 1.0),
                MulTerm::new(0, 2, 1.0),
                MulTerm::new(1, 1, 2.0),
            ],
        ]
    }

    fn lift(&self, y: f64) -> Vec<f64> {
        vec![1.0, y, y * y]
    }
}

/// Class-count semi-ring `(c, c₁, …, c_k)` (paper Table 1): supports Gini,
/// information gain and chi-square for `k`-class classification.
///
/// * `lift(class j) = (1, 0, …, 1 at j, …, 0)`
/// * `⊗` scales each class count by the other side's total count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCountRing {
    pub num_classes: usize,
}

impl ClassCountRing {
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        ClassCountRing { num_classes }
    }

    /// Lift a class label (0-based).
    pub fn lift_class(&self, class: usize) -> Vec<f64> {
        assert!(class < self.num_classes);
        let mut v = vec![0.0; self.num_classes + 1];
        v[0] = 1.0;
        v[class + 1] = 1.0;
        v
    }
}

impl SemiRing for ClassCountRing {
    fn components(&self) -> Vec<String> {
        let mut v = vec!["c".to_string()];
        for i in 0..self.num_classes {
            v.push(format!("c{i}"));
        }
        v
    }

    fn one(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.num_classes + 1];
        v[0] = 1.0;
        v
    }

    fn mul_terms(&self) -> Vec<Vec<MulTerm>> {
        let mut out = vec![vec![MulTerm::new(0, 0, 1.0)]];
        for i in 1..=self.num_classes {
            out.push(vec![MulTerm::new(i, 0, 1.0), MulTerm::new(0, i, 1.0)]);
        }
        out
    }

    /// Lifting a raw f64 treats it as a class index.
    fn lift(&self, y: f64) -> Vec<f64> {
        self.lift_class(y as usize)
    }
}

/// Gradient semi-ring `(h, g)` (Appendix B, Table 2):
///
/// * `lift(t) = (h(t), g(t))` on the target relation, `(1, 0)` elsewhere
/// * `(h₁,g₁) ⊗ (h₂,g₂) = (h₁h₂, g₁h₂+g₂h₁)`
///
/// Supports second-order boosting: the split gain and leaf weights only
/// need `ΣG` and `ΣH`. With `lift(d) = (1, d)` it is add-to-mul preserving,
/// which is why first-order residual updates factorize.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GradientRing;

impl GradientRing {
    /// Lift a (gradient, hessian) pair computed by a loss function.
    pub fn lift_gh(&self, g: f64, h: f64) -> Vec<f64> {
        vec![h, g]
    }
}

impl SemiRing for GradientRing {
    fn components(&self) -> Vec<String> {
        vec!["h".into(), "g".into()]
    }

    fn one(&self) -> Vec<f64> {
        vec![1.0, 0.0]
    }

    fn mul_terms(&self) -> Vec<Vec<MulTerm>> {
        vec![
            vec![MulTerm::new(0, 0, 1.0)],
            vec![MulTerm::new(1, 0, 1.0), MulTerm::new(0, 1, 1.0)],
        ]
    }

    /// Default lift used for residual-style updates: unit hessian.
    fn lift(&self, y: f64) -> Vec<f64> {
        vec![1.0, y]
    }
}

/// A would-be "semi-ring" for `mae` that tracks `(count, Σ sign(y))`.
/// The paper proves no constant-size add-to-mul-preserving lift exists for
/// `mae`; this type exists so tests can demonstrate the failure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveSignRing;

impl SemiRing for NaiveSignRing {
    fn components(&self) -> Vec<String> {
        vec!["c".into(), "sgn".into()]
    }

    fn one(&self) -> Vec<f64> {
        vec![1.0, 0.0]
    }

    fn mul_terms(&self) -> Vec<Vec<MulTerm>> {
        vec![
            vec![MulTerm::new(0, 0, 1.0)],
            vec![MulTerm::new(1, 0, 1.0), MulTerm::new(0, 1, 1.0)],
        ]
    }

    fn lift(&self, y: f64) -> Vec<f64> {
        vec![1.0, y.signum()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn variance_ring_matches_table_1() {
        let r = VarianceRing;
        let a = [2.0, 5.0, 13.0];
        let b = [3.0, 4.0, 10.0];
        let prod = r.mul(&a, &b);
        // (c1c2, s1c2+s2c1, q1c2+q2c1+2s1s2) = (6, 23, 13·3+10·2+2·5·4)
        assert_vec_eq(&prod, &[6.0, 23.0, 99.0]);
        let sum = r.add(&a, &b);
        assert_vec_eq(&sum, &[5.0, 9.0, 23.0]);
    }

    #[test]
    fn variance_lift_and_identity() {
        let r = VarianceRing;
        assert_vec_eq(&r.lift(3.0), &[1.0, 3.0, 9.0]);
        let a = [2.0, 5.0, 13.0];
        assert_vec_eq(&r.mul(&a, &r.one()), &a);
        assert_vec_eq(&r.add(&a, &r.zero()), &a);
        assert_vec_eq(&r.mul(&a, &r.zero()), &r.zero());
    }

    #[test]
    fn variance_ring_is_add_to_mul_preserving() {
        let r = VarianceRing;
        let samples = [(2.0, -1.5), (0.0, 3.25), (-7.0, -0.1), (1e3, -1e-3)];
        assert!(r.is_add_to_mul_preserving(&samples));
        // Spot check from the paper: lift(y - p) = lift(y) ⊗ lift(-p).
        let (y, p) = (2.0f64, 2.5f64);
        let lhs = r.lift(y - p);
        let rhs = r.mul(&r.lift(y), &r.lift(-p));
        assert_vec_eq(&lhs, &rhs);
    }

    #[test]
    fn naive_sign_ring_is_not_add_to_mul_preserving() {
        // Paper Section 4.2: Σ sign(y − p) cannot be derived from
        // (Σ1, Σ sign(y), −p); the sign lift breaks the property.
        let r = NaiveSignRing;
        assert!(!r.is_add_to_mul_preserving(&[(1.0, -2.0)]));
    }

    #[test]
    fn gradient_ring_matches_table_2() {
        let r = GradientRing;
        let a = [2.0, 5.0]; // (h, g)
        let b = [3.0, 4.0];
        assert_vec_eq(&r.mul(&a, &b), &[6.0, 23.0]);
        assert!(r.is_add_to_mul_preserving(&[(1.0, 2.0), (-0.5, 3.0)]));
    }

    #[test]
    fn class_count_ring_matches_table_1() {
        let r = ClassCountRing::new(3);
        let a = r.lift_class(0); // (1, 1, 0, 0)
        let b = r.lift_class(2); // (1, 0, 0, 1)
        let sum = r.add(&a, &b);
        assert_vec_eq(&sum, &[2.0, 1.0, 0.0, 1.0]);
        // ⊗ with a pure-count annotation scales the class counts.
        let scale = [4.0, 0.0, 0.0, 0.0];
        let prod = r.mul(&sum, &scale);
        assert_vec_eq(&prod, &[8.0, 4.0, 0.0, 4.0]);
        assert_vec_eq(&r.mul(&sum, &r.one()), &sum);
    }

    #[test]
    fn sum_lifted_aggregates() {
        let r = VarianceRing;
        let ys = [2.0, 3.0, 1.0, 2.0];
        let agg = r.sum_lifted(ys.iter());
        assert_vec_eq(&agg, &[4.0, 8.0, 18.0]);
    }

    #[test]
    fn paper_example_1_variance_via_semiring() {
        // Figure 1: γ(R ⋈ S ⋈ T) = (8, 16, 36) and variance = Q − S²/C = 4.
        let r = VarianceRing;
        let agg = [8.0f64, 16.0, 36.0];
        let var = agg[2] - agg[1] * agg[1] / agg[0];
        assert!((var - 4.0).abs() < 1e-12);
        // The same aggregate assembled by message passing: B column of R is
        // the target; S and T contribute count-only annotations.
        let r_by_a: Vec<(i64, Vec<f64>)> = vec![
            (1, r.add(&r.lift(2.0), &r.lift(3.0))),
            (2, r.add(&r.lift(1.0), &r.lift(2.0))),
        ];
        // S has 2 rows with A=1? From Figure 1a: S(A,C): (1,2),(2,1),(2,3).
        let s_by_a = [(1i64, 1.0f64), (2, 2.0)];
        // T(A,D): (1,1),(1,2),(2,2).
        let t_by_a = [(1i64, 2.0f64), (2, 1.0)];
        let mut total = r.zero();
        for (a, ra) in &r_by_a {
            let sc = s_by_a.iter().find(|(k, _)| k == a).unwrap().1;
            let tc = t_by_a.iter().find(|(k, _)| k == a).unwrap().1;
            let mut v = r.mul(ra, &[sc, 0.0, 0.0]);
            v = r.mul(&v, &[tc, 0.0, 0.0]);
            total = r.add(&total, &v);
        }
        assert_vec_eq(&total, &agg);
    }
}
