//! Split criteria computed from aggregated semi-ring annotations
//! (paper Section 3.3 and Appendices A–B).

/// Variance of the target from the aggregated variance-ring annotation
/// `(C, S, Q)`: `Q − S²/C`. Returns 0 for empty sets.
pub fn variance(c: f64, s: f64, q: f64) -> f64 {
    if c <= 0.0 {
        0.0
    } else {
        q - s * s / c
    }
}

/// Reduction in variance for a split (Appendix A). Only needs `(C, S)` of
/// the node and `(Cσ, Sσ)` of the left side — the `Q` terms cancel:
///
/// `−S²/C + Sσ²/Cσ + (S−Sσ)²/(C−Cσ)`
///
/// Returns `None` for degenerate splits (either side empty), which a
/// trainer must skip.
pub fn variance_reduction(c_total: f64, s_total: f64, c_left: f64, s_left: f64) -> Option<f64> {
    let c_right = c_total - c_left;
    let s_right = s_total - s_left;
    if c_left <= 0.0 || c_right <= 0.0 || c_total <= 0.0 {
        return None;
    }
    Some(-s_total * s_total / c_total + s_left * s_left / c_left + s_right * s_right / c_right)
}

/// Second-order gain for gradient boosting (Appendix B): the loss reduction
/// of splitting a node with totals `(G, H)` into `(G_l, H_l)` and the
/// complement, with L2 regularization `lambda` and per-leaf penalty `alpha`:
///
/// `0.5·[G_l²/(H_l+λ) + G_r²/(H_r+λ) − G²/(H+λ)] − α`
pub fn second_order_gain(
    g_total: f64,
    h_total: f64,
    g_left: f64,
    h_left: f64,
    lambda: f64,
    alpha: f64,
) -> Option<f64> {
    let g_right = g_total - g_left;
    let h_right = h_total - h_left;
    if h_left <= 0.0 || h_right <= 0.0 {
        return None;
    }
    let term = |g: f64, h: f64| g * g / (h + lambda);
    Some(0.5 * (term(g_left, h_left) + term(g_right, h_right) - term(g_total, h_total)) - alpha)
}

/// Optimal leaf prediction for second-order boosting: `−G/(H+λ)`.
pub fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    if h + lambda <= 0.0 {
        0.0
    } else {
        -g / (h + lambda)
    }
}

/// Gini impurity from class counts `(C, C₁..C_k)`: `1 − Σ (Cᵢ/C)²`.
pub fn gini(counts: &[f64]) -> f64 {
    let (c, classes) = split_counts(counts);
    if c <= 0.0 {
        return 0.0;
    }
    1.0 - classes.iter().map(|&ci| (ci / c) * (ci / c)).sum::<f64>()
}

/// Entropy from class counts: `−Σ (Cᵢ/C)·log(Cᵢ/C)` (natural log).
pub fn entropy(counts: &[f64]) -> f64 {
    let (c, classes) = split_counts(counts);
    if c <= 0.0 {
        return 0.0;
    }
    -classes
        .iter()
        .filter(|&&ci| ci > 0.0)
        .map(|&ci| {
            let p = ci / c;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Chi-square statistic of a binary split (Appendix A): given node counts
/// and the left-side counts, sums `(observed − expected)²/expected` over
/// classes and sides.
pub fn chi_square(total: &[f64], left: &[f64]) -> f64 {
    let (c, classes) = split_counts(total);
    let (c_l, classes_l) = split_counts(left);
    let c_r = c - c_l;
    if c <= 0.0 {
        return 0.0;
    }
    let mut stat = 0.0;
    for (i, &ci) in classes.iter().enumerate() {
        let obs_l = classes_l[i];
        let obs_r = ci - obs_l;
        let exp_l = ci * c_l / c;
        let exp_r = ci * c_r / c;
        if exp_l > 0.0 {
            stat += (obs_l - exp_l) * (obs_l - exp_l) / exp_l;
        }
        if exp_r > 0.0 {
            stat += (obs_r - exp_r) * (obs_r - exp_r) / exp_r;
        }
    }
    stat
}

fn split_counts(counts: &[f64]) -> (f64, &[f64]) {
    assert!(counts.len() >= 2, "need total + at least one class count");
    (counts[0], &counts[1..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_from_paper_example_1() {
        assert_eq!(variance(8.0, 16.0, 36.0), 4.0);
    }

    #[test]
    fn variance_reduction_matches_direct_computation() {
        // Values: left = [1, 2], right = [5, 6].
        let ys = [1.0, 2.0, 5.0, 6.0];
        let (c, s, q) = ys
            .iter()
            .fold((0.0, 0.0, 0.0), |(c, s, q), &y| (c + 1.0, s + y, q + y * y));
        let (cl, sl, ql) = (2.0, 3.0, 5.0);
        let direct = variance(c, s, q) - variance(cl, sl, ql) - variance(c - cl, s - sl, q - ql);
        let via_formula = variance_reduction(c, s, cl, sl).unwrap();
        assert!((direct - via_formula).abs() < 1e-9);
        assert!(via_formula > 0.0);
    }

    #[test]
    fn degenerate_splits_are_none() {
        assert!(variance_reduction(4.0, 8.0, 0.0, 0.0).is_none());
        assert!(variance_reduction(4.0, 8.0, 4.0, 8.0).is_none());
        assert!(second_order_gain(1.0, 4.0, 1.0, 4.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn second_order_gain_and_leaf_weight() {
        // Perfect split of residuals [-1,-1,+1,+1] with unit hessians.
        let gain = second_order_gain(0.0, 4.0, -2.0, 2.0, 0.0, 0.0).unwrap();
        assert!((gain - 2.0).abs() < 1e-12);
        assert_eq!(leaf_weight(-2.0, 2.0, 0.0), 1.0);
        assert_eq!(leaf_weight(-2.0, 2.0, 2.0), 0.5);
        // Alpha penalizes each split.
        let gain_a = second_order_gain(0.0, 4.0, -2.0, 2.0, 0.0, 0.5).unwrap();
        assert!((gain_a - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gini_entropy_bounds() {
        // Pure node.
        assert_eq!(gini(&[4.0, 4.0, 0.0]), 0.0);
        assert_eq!(entropy(&[4.0, 4.0, 0.0]), 0.0);
        // Perfectly mixed binary node.
        assert!((gini(&[4.0, 2.0, 2.0]) - 0.5).abs() < 1e-12);
        assert!((entropy(&[4.0, 2.0, 2.0]) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn chi_square_zero_for_independent_split() {
        // Split that preserves class ratios exactly → χ² = 0.
        let total = [8.0, 4.0, 4.0];
        let left = [4.0, 2.0, 2.0];
        assert!(chi_square(&total, &left).abs() < 1e-12);
        // Perfectly separating split → large χ².
        let left = [4.0, 4.0, 0.0];
        assert!(chi_square(&total, &left) > 7.9);
    }
}
