//! Loss functions (objectives) with gradients and Hessians — paper
//! Appendix B, Table 3.
//!
//! As in LightGBM (which the paper mirrors), some gradients/Hessians are
//! "not mathematically rigorous": `mae` uses a unit Hessian, Huber's
//! Hessian is 1, etc. We reproduce those practical choices.
//!
//! For raw-score objectives (Poisson, logistic) the prediction `p` is the
//! raw additive score of the ensemble, not the transformed mean.

use serde::{Deserialize, Serialize};

/// A training objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// L2 / `rmse`: the only objective supported on galaxy schemas
    /// (Section 4.2); `loss = ε²`, `g = −ε`, `h = 1` where `ε = y − p`.
    SquaredError,
    /// L1 / `mae`: `loss = |ε|`, `g = −sign(ε)`, `h = 1`.
    AbsoluteError,
    /// Huber loss with threshold `delta`.
    Huber { delta: f64 },
    /// Fair loss with scale `c`.
    Fair { c: f64 },
    /// Poisson regression (raw score `p`; mean is `exp(p)`).
    Poisson,
    /// Quantile (pinball) loss at quantile `alpha`.
    Quantile { alpha: f64 },
    /// Mean absolute percentage error.
    Mape,
    /// Binary logistic loss (`y ∈ {0,1}`, raw score `p`).
    Logistic,
}

impl Objective {
    /// Human-readable name matching the LightGBM parameter values.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::SquaredError => "regression",
            Objective::AbsoluteError => "regression_l1",
            Objective::Huber { .. } => "huber",
            Objective::Fair { .. } => "fair",
            Objective::Poisson => "poisson",
            Objective::Quantile { .. } => "quantile",
            Objective::Mape => "mape",
            Objective::Logistic => "binary",
        }
    }

    /// Only `rmse` factorizes over galaxy schemas (variance semi-ring is
    /// add-to-mul preserving; no such constant-size ring exists for the
    /// others — Section 4.2).
    pub fn supports_galaxy(&self) -> bool {
        matches!(self, Objective::SquaredError)
    }

    /// Loss value for one example.
    pub fn loss(&self, y: f64, p: f64) -> f64 {
        let e = y - p;
        match *self {
            Objective::SquaredError => e * e,
            Objective::AbsoluteError => e.abs(),
            Objective::Huber { delta } => {
                if e.abs() <= delta {
                    0.5 * e * e
                } else {
                    delta * (e.abs() - 0.5 * delta)
                }
            }
            Objective::Fair { c } => c * e.abs() - c * c * (e.abs() / c + 1.0).ln(),
            Objective::Poisson => p.exp() - y * p,
            Objective::Quantile { alpha } => {
                if e < 0.0 {
                    (alpha - 1.0) * e
                } else {
                    alpha * e
                }
            }
            Objective::Mape => e.abs() / y.abs().max(1.0),
            Objective::Logistic => {
                // log(1 + exp(p)) − y·p, numerically stabilized.
                let m = p.max(0.0);
                m + ((-m).exp() + (p - m).exp()).ln() - y * p
            }
        }
    }

    /// Gradient `∂loss/∂p` (Table 3, with the paper's sign conventions
    /// rewritten in terms of `p` so that `g` is a true derivative).
    pub fn gradient(&self, y: f64, p: f64) -> f64 {
        let e = y - p;
        match *self {
            // Practical convention (LightGBM): g = p − y = −ε with h = 1;
            // the factor 2 of the true derivative is absorbed into the
            // learning rate.
            Objective::SquaredError => -e,
            Objective::AbsoluteError => -e.signum(),
            Objective::Huber { delta } => {
                if e.abs() <= delta {
                    -e
                } else {
                    -delta * e.signum()
                }
            }
            Objective::Fair { c } => -c * e / (e.abs() + c),
            Objective::Poisson => p.exp() - y,
            Objective::Quantile { alpha } => {
                if e < 0.0 {
                    1.0 - alpha
                } else {
                    -alpha
                }
            }
            Objective::Mape => -e.signum() / y.abs().max(1.0),
            Objective::Logistic => sigmoid(p) - y,
        }
    }

    /// Hessian `∂²loss/∂p²` (practical approximations per Table 3).
    pub fn hessian(&self, y: f64, p: f64) -> f64 {
        let e = y - p;
        match *self {
            Objective::SquaredError => 1.0,
            Objective::AbsoluteError => 1.0,
            Objective::Huber { .. } => 1.0,
            Objective::Fair { c } => c * c / ((e.abs() + c) * (e.abs() + c)),
            Objective::Poisson => p.exp(),
            Objective::Quantile { .. } => 1.0,
            Objective::Mape => 1.0,
            Objective::Logistic => {
                let s = sigmoid(p);
                (s * (1.0 - s)).max(1e-16)
            }
        }
    }

    /// The constant base score minimizing the loss over the training
    /// targets (the 0-th iteration prediction).
    pub fn init_score(&self, ys: &[f64]) -> f64 {
        if ys.is_empty() {
            return 0.0;
        }
        match *self {
            Objective::SquaredError | Objective::Huber { .. } | Objective::Fair { .. } => {
                ys.iter().sum::<f64>() / ys.len() as f64
            }
            Objective::AbsoluteError | Objective::Mape => percentile(ys, 0.5),
            Objective::Quantile { alpha } => percentile(ys, alpha),
            Objective::Poisson => {
                let mean = ys.iter().sum::<f64>() / ys.len() as f64;
                mean.max(1e-9).ln()
            }
            Objective::Logistic => {
                let mean = (ys.iter().sum::<f64>() / ys.len() as f64).clamp(1e-9, 1.0 - 1e-9);
                (mean / (1.0 - mean)).ln()
            }
        }
    }

    /// Transform a raw ensemble score into the prediction space (identity
    /// for direct objectives, `exp` for Poisson, sigmoid for logistic).
    pub fn transform(&self, raw: f64) -> f64 {
        match self {
            Objective::Poisson => raw.exp(),
            Objective::Logistic => sigmoid(raw),
            _ => raw,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn percentile(ys: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = ys.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = (q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
    v[pos]
}

/// Root mean squared error of predictions.
pub fn rmse(ys: &[f64], ps: &[f64]) -> f64 {
    assert_eq!(ys.len(), ps.len());
    if ys.is_empty() {
        return 0.0;
    }
    let mse = ys
        .iter()
        .zip(ps)
        .map(|(y, p)| (y - p) * (y - p))
        .sum::<f64>()
        / ys.len() as f64;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_gradient(obj: Objective, y: f64, p: f64) -> f64 {
        let h = 1e-6;
        (obj.loss(y, p + h) - obj.loss(y, p - h)) / (2.0 * h)
    }

    #[test]
    fn gradients_match_numeric_derivatives() {
        let objectives = [
            // SquaredError's practical gradient is −ε = 0.5·dloss/dp; scale
            // invariance makes the factor irrelevant, so test it separately.
            Objective::AbsoluteError,
            Objective::Huber { delta: 1.0 },
            Objective::Fair { c: 2.0 },
            Objective::Poisson,
            Objective::Quantile { alpha: 0.9 },
            Objective::Logistic,
        ];
        for obj in objectives {
            for &(y, p) in &[(3.0, 1.0), (0.0, 2.0), (1.0, 0.3), (5.0, 4.9)] {
                let (y, p) = if obj == Objective::Logistic {
                    (if y > 1.0 { 1.0 } else { 0.0 }, p)
                } else {
                    (y, p)
                };
                let g = obj.gradient(y, p);
                let num = numeric_gradient(obj, y, p);
                assert!(
                    (g - num).abs() < 1e-4 * (1.0 + num.abs()),
                    "{} at (y={y}, p={p}): got {g}, numeric {num}",
                    obj.name()
                );
            }
        }
    }

    #[test]
    fn squared_error_gradient_is_negative_residual() {
        let obj = Objective::SquaredError;
        assert_eq!(obj.gradient(3.0, 1.0), -2.0);
        assert_eq!(obj.hessian(3.0, 1.0), 1.0);
    }

    #[test]
    fn hessians_nonnegative() {
        let objectives = [
            Objective::SquaredError,
            Objective::AbsoluteError,
            Objective::Huber { delta: 1.0 },
            Objective::Fair { c: 2.0 },
            Objective::Poisson,
            Objective::Quantile { alpha: 0.1 },
            Objective::Mape,
            Objective::Logistic,
        ];
        for obj in objectives {
            for &(y, p) in &[(3.0, 1.0), (0.0, -2.0), (1.0, 0.0)] {
                assert!(obj.hessian(y, p) > 0.0, "{}", obj.name());
            }
        }
    }

    #[test]
    fn init_scores_minimize() {
        let ys = [1.0, 2.0, 3.0, 10.0];
        // Mean minimizes L2, median minimizes L1.
        assert_eq!(Objective::SquaredError.init_score(&ys), 4.0);
        let med = Objective::AbsoluteError.init_score(&ys);
        assert!((2.0..=3.0).contains(&med));
        // Check optimality numerically for L2.
        let base = Objective::SquaredError.init_score(&ys);
        let at = |p: f64| {
            ys.iter()
                .map(|&y| Objective::SquaredError.loss(y, p))
                .sum::<f64>()
        };
        assert!(at(base) <= at(base + 0.1) && at(base) <= at(base - 0.1));
    }

    #[test]
    fn galaxy_support_only_rmse() {
        assert!(Objective::SquaredError.supports_galaxy());
        assert!(!Objective::AbsoluteError.supports_galaxy());
        assert!(!Objective::Huber { delta: 1.0 }.supports_galaxy());
    }

    #[test]
    fn transforms() {
        assert_eq!(Objective::SquaredError.transform(2.5), 2.5);
        assert!((Objective::Poisson.transform(0.0) - 1.0).abs() < 1e-12);
        assert!((Objective::Logistic.transform(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_helper() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
