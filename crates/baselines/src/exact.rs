//! Exact single-table variance-tree trainer.
//!
//! Mirrors the factorized trainer's split rule exactly — per-distinct-value
//! candidate thresholds, the same variance-reduction formula, the same
//! best-first growth and tie-breaking — so that tests can assert the
//! factorized path over the join graph returns an **identical tree** to
//! training over the materialized join (the paper's correctness claim).

use std::collections::HashMap;

use joinboost::tree::{Split, SplitCondition, Tree, TreeNode};
use joinboost_engine::Table;
use joinboost_semiring::variance_reduction;

/// Grow an exact regression tree over a materialized table.
///
/// `features` are resolved against `table`; the target column is `target`.
/// Parameters mirror `joinboost::TrainParams` semantics for the variance
/// ring (best-first growth).
pub fn train_exact_tree(
    table: &Table,
    features: &[String],
    target: &str,
    num_leaves: usize,
    min_gain: f64,
    min_data_in_leaf: f64,
    max_depth: usize,
) -> Tree {
    let n = table.num_rows();
    let y: Vec<f64> = table
        .column(None, target)
        .expect("target column")
        .to_f64_vec()
        .expect("numeric target");
    let cols: Vec<Vec<f64>> = features
        .iter()
        .map(|f| {
            table
                .column(None, f)
                .expect("feature column")
                .to_f64_vec()
                .expect("numeric feature")
        })
        .collect();
    let total_sum: f64 = y.iter().sum();
    let mut tree = Tree::single_leaf(if n > 0 { total_sum / n as f64 } else { 0.0 }, n as f64);
    if n == 0 {
        return tree;
    }
    struct Node {
        rows: Vec<u32>,
        sum: f64,
        depth: usize,
        idx: usize,
    }
    struct Cand {
        gain: f64,
        feat: usize,
        threshold: f64,
        node: Node,
    }
    let evaluate = |node: &Node| -> Option<(f64, usize, f64)> {
        let c_total = node.rows.len() as f64;
        if c_total < 2.0 * min_data_in_leaf {
            return None;
        }
        let s_total = node.sum;
        let mut best: Option<(f64, usize, f64)> = None;
        for (f, col) in cols.iter().enumerate() {
            // Per-distinct-value aggregates (like the SQL GROUP BY).
            let mut agg: HashMap<u64, (f64, f64, f64)> = HashMap::new();
            for &r in &node.rows {
                let v = col[r as usize];
                if v.is_nan() {
                    continue;
                }
                let e = agg.entry(v.to_bits()).or_insert((v, 0.0, 0.0));
                e.1 += 1.0;
                e.2 += y[r as usize];
            }
            let mut values: Vec<(f64, f64, f64)> = agg.into_values().collect();
            values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut c_acc = 0.0;
            let mut s_acc = 0.0;
            for (v, c, s) in values {
                c_acc += c;
                s_acc += s;
                if c_acc < min_data_in_leaf || c_total - c_acc < min_data_in_leaf {
                    continue;
                }
                if let Some(g) = variance_reduction(c_total, s_total, c_acc, s_acc) {
                    if g > min_gain && best.is_none_or(|(bg, _, _)| g > bg) {
                        best = Some((g, f, v));
                    }
                }
            }
        }
        best
    };
    let mut heap: Vec<Cand> = Vec::new();
    let root = Node {
        rows: (0..n as u32).collect(),
        sum: total_sum,
        depth: 0,
        idx: 0,
    };
    if let Some((gain, feat, threshold)) = evaluate(&root) {
        heap.push(Cand {
            gain,
            feat,
            threshold,
            node: root,
        });
    }
    let mut leaves = 1;
    while leaves < num_leaves {
        let Some(pos) = heap
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.gain
                    .partial_cmp(&b.1.gain)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let Cand {
            feat,
            threshold,
            node,
            ..
        } = heap.swap_remove(pos);
        let mut lrows = Vec::new();
        let mut rrows = Vec::new();
        let mut lsum = 0.0;
        for &r in &node.rows {
            let v = cols[feat][r as usize];
            if !v.is_nan() && v <= threshold {
                lrows.push(r);
                lsum += y[r as usize];
            } else {
                rrows.push(r);
            }
        }
        let rsum = node.sum - lsum;
        let left_id = tree.nodes.len();
        let right_id = left_id + 1;
        tree.nodes.push(TreeNode {
            split: None,
            left: 0,
            right: 0,
            value: lsum / lrows.len().max(1) as f64,
            weight: lrows.len() as f64,
            depth: node.depth + 1,
        });
        tree.nodes.push(TreeNode {
            split: None,
            left: 0,
            right: 0,
            value: rsum / rrows.len().max(1) as f64,
            weight: rrows.len() as f64,
            depth: node.depth + 1,
        });
        tree.nodes[node.idx].split = Some(Split {
            feature: features[feat].clone(),
            relation: "flat".into(),
            cond: SplitCondition::LtEq(threshold),
            default_left: false,
        });
        tree.nodes[node.idx].left = left_id;
        tree.nodes[node.idx].right = right_id;
        leaves += 1;
        if max_depth > 0 && node.depth + 1 >= max_depth {
            continue;
        }
        for (rows, sum, idx) in [(lrows, lsum, left_id), (rrows, rsum, right_id)] {
            let child = Node {
                rows,
                sum,
                depth: node.depth + 1,
                idx,
            };
            if let Some((gain, feat, threshold)) = evaluate(&child) {
                heap.push(Cand {
                    gain,
                    feat,
                    threshold,
                    node: child,
                });
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::Column;

    #[test]
    fn splits_a_step_function_exactly() {
        let t = Table::from_columns(vec![
            ("x", Column::float(vec![1.0, 2.0, 3.0, 4.0])),
            ("y", Column::float(vec![0.0, 0.0, 10.0, 10.0])),
        ]);
        let tree = train_exact_tree(&t, &["x".into()], "y", 2, 1e-12, 1.0, 0);
        assert_eq!(tree.num_leaves(), 2);
        let s = tree.nodes[0].split.as_ref().unwrap();
        assert_eq!(s.cond, SplitCondition::LtEq(2.0));
        assert_eq!(tree.nodes[tree.nodes[0].left].value, 0.0);
        assert_eq!(tree.nodes[tree.nodes[0].right].value, 10.0);
    }

    #[test]
    fn respects_leaf_budget_and_depth() {
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let t = Table::from_columns(vec![("x", Column::float(x)), ("y", Column::float(y))]);
        let tree = train_exact_tree(&t, &["x".into()], "y", 8, 1e-12, 1.0, 0);
        assert_eq!(tree.num_leaves(), 8);
        let tree = train_exact_tree(&t, &["x".into()], "y", 64, 1e-12, 1.0, 2);
        assert!(tree.max_depth() <= 2);
        assert!(tree.num_leaves() <= 4);
    }
}
