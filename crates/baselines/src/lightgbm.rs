//! A LightGBM-like single-table trainer.
//!
//! Reproduces the two properties the paper's comparison hinges on:
//!
//! 1. it consumes a **single denormalized table**, so it pays join
//!    materialization + export + load before training starts
//!    ([`export_join`]);
//! 2. training is a tight in-memory loop over flat arrays — histogram
//!    split finding and **multi-threaded residual updates** (a parallel
//!    write to a `Vec<f64>`, the ~0.2 s red line of Figure 5).
//!
//! It also models the library's weakness: everything must fit in memory
//! ([`LgbmParams::memory_limit_bytes`] makes the paper's OOM crossovers
//! reproducible).

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use joinboost::predict::materialize_features;
use joinboost::tree::{Split, SplitCondition, Tree, TreeNode};
use joinboost::Dataset;
use joinboost_semiring::variance_reduction;

/// A denormalized in-memory dataset (what the CSV loads into).
#[derive(Debug, Clone, Default)]
pub struct FlatDataset {
    pub feature_names: Vec<String>,
    /// Column-major feature values.
    pub features: Vec<Vec<f64>>,
    pub y: Vec<f64>,
}

impl FlatDataset {
    pub fn num_rows(&self) -> usize {
        self.y.len()
    }

    /// Approximate resident bytes.
    pub fn byte_size(&self) -> usize {
        (self.features.len() + 1) * self.y.len() * 8
    }
}

/// Costs of getting data out of the DBMS and into the library.
#[derive(Debug, Clone, Default)]
pub struct ExportStats {
    pub join_time: Duration,
    pub export_time: Duration,
    pub load_time: Duration,
    pub exported_bytes: u64,
}

impl ExportStats {
    pub fn total(&self) -> Duration {
        self.join_time + self.export_time + self.load_time
    }
}

/// Materialize the join, export it as CSV to a temp file, and load it back
/// — the pipeline every single-table ML library imposes (Section 6,
/// "Methods").
pub fn export_join(set: &Dataset) -> joinboost::Result<(FlatDataset, ExportStats)> {
    let mut stats = ExportStats::default();
    let t0 = Instant::now();
    let table = materialize_features(set)?;
    stats.join_time = t0.elapsed();

    let feature_names: Vec<String> = set.features().into_iter().map(|(f, _)| f).collect();
    let path = std::env::temp_dir().join(format!(
        "jb_export_{}_{}.csv",
        std::process::id(),
        set.fresh_table("export")
    ));
    let t1 = Instant::now();
    {
        let file = std::fs::File::create(&path)
            .map_err(|e| joinboost::TrainError::Engine(format!("export: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        for i in 0..table.num_rows() {
            let mut line = String::with_capacity(feature_names.len() * 12);
            for f in &feature_names {
                let v = table
                    .column(None, f)
                    .map_err(|e| joinboost::TrainError::Engine(e.to_string()))?
                    .f64_at(i)
                    .unwrap_or(f64::NAN);
                line.push_str(&format!("{v},"));
            }
            let y = table
                .column(None, "jb_target")
                .map_err(|e| joinboost::TrainError::Engine(e.to_string()))?
                .f64_at(i)
                .unwrap_or(f64::NAN);
            line.push_str(&format!("{y}\n"));
            w.write_all(line.as_bytes())
                .map_err(|e| joinboost::TrainError::Engine(format!("export: {e}")))?;
        }
        w.flush()
            .map_err(|e| joinboost::TrainError::Engine(format!("export: {e}")))?;
    }
    stats.export_time = t1.elapsed();
    stats.exported_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let t2 = Instant::now();
    let file = std::fs::File::open(&path)
        .map_err(|e| joinboost::TrainError::Engine(format!("load: {e}")))?;
    let reader = std::io::BufReader::new(file);
    let mut data = FlatDataset {
        feature_names: feature_names.clone(),
        features: vec![Vec::new(); feature_names.len()],
        y: Vec::new(),
    };
    for line in reader.lines() {
        let line = line.map_err(|e| joinboost::TrainError::Engine(format!("load: {e}")))?;
        let mut parts = line.split(',');
        for col in &mut data.features {
            let v: f64 = parts.next().unwrap_or("nan").parse().unwrap_or(f64::NAN);
            col.push(v);
        }
        let y: f64 = parts.next().unwrap_or("nan").parse().unwrap_or(f64::NAN);
        data.y.push(y);
    }
    stats.load_time = t2.elapsed();
    let _ = std::fs::remove_file(&path);
    Ok((data, stats))
}

/// Training parameters (LightGBM naming; L2 objective).
#[derive(Debug, Clone)]
pub struct LgbmParams {
    pub num_iterations: usize,
    pub learning_rate: f64,
    pub num_leaves: usize,
    pub max_bins: usize,
    pub min_data_in_leaf: usize,
    pub bagging_fraction: f64,
    pub feature_fraction: f64,
    pub threads: usize,
    pub seed: u64,
    /// Simulated memory budget; exceeding it aborts with an OOM error
    /// (reproducing the paper's LightGBM failures at high feature counts
    /// and scale factors).
    pub memory_limit_bytes: Option<usize>,
}

impl Default for LgbmParams {
    fn default() -> Self {
        LgbmParams {
            num_iterations: 10,
            learning_rate: 0.1,
            num_leaves: 8,
            max_bins: 1000,
            min_data_in_leaf: 1,
            bagging_fraction: 1.0,
            feature_fraction: 1.0,
            threads: 4,
            seed: 42,
            memory_limit_bytes: None,
        }
    }
}

/// Trained model plus timing breakdown.
#[derive(Debug, Clone)]
pub struct LgbmModel {
    pub init_score: f64,
    pub learning_rate: f64,
    pub trees: Vec<Tree>,
    /// `true` for boosted models (additive), `false` for bagged (averaged).
    pub boosted: bool,
    pub train_time: Duration,
    /// Time in residual updates only.
    pub update_time: Duration,
}

impl LgbmModel {
    pub fn predict_row(&self, row: &dyn joinboost::tree::FeatureRow) -> f64 {
        if self.boosted {
            self.init_score
                + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
        } else if self.trees.is_empty() {
            self.init_score
        } else {
            self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
        }
    }

    pub fn predict_table(&self, table: &joinboost_engine::Table) -> Vec<f64> {
        (0..table.num_rows())
            .map(|i| self.predict_row(&joinboost::predict::TableRow { table, index: i }))
            .collect()
    }
}

struct Binned {
    /// Per feature: sorted bin upper-edge values (actual data values).
    edges: Vec<Vec<f64>>,
    /// Per feature: per-row bin codes.
    codes: Vec<Vec<u16>>,
}

fn bin_features(data: &FlatDataset, max_bins: usize) -> Binned {
    let n = data.num_rows();
    let mut edges = Vec::with_capacity(data.features.len());
    let mut codes = Vec::with_capacity(data.features.len());
    for col in &data.features {
        let mut sorted: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        sorted.dedup();
        let e: Vec<f64> = if sorted.len() <= max_bins {
            sorted
        } else {
            // Equal-frequency edges.
            (1..=max_bins)
                .map(|b| sorted[(b * sorted.len() / max_bins).saturating_sub(1)])
                .collect()
        };
        let mut c = Vec::with_capacity(n);
        for &v in col {
            let code = e.partition_point(|&edge| edge < v);
            c.push(code.min(e.len().saturating_sub(1)) as u16);
        }
        edges.push(e);
        codes.push(c);
    }
    Binned { edges, codes }
}

struct NodeState {
    rows: Vec<u32>,
    sum: f64,
    depth: usize,
    tree_index: usize,
}

/// Histogram split finding on the rows of one node.
fn best_split(
    binned: &Binned,
    residuals: &[f64],
    node: &NodeState,
    feats: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, f64, Vec<bool>)> {
    let c_total = node.rows.len() as f64;
    let s_total = node.sum;
    let mut best: Option<(usize, usize, f64)> = None; // (feat, bin, gain)
    for &f in feats {
        let nbins = binned.edges[f].len();
        if nbins < 2 {
            continue;
        }
        let mut count = vec![0f64; nbins];
        let mut sum = vec![0f64; nbins];
        let codes = &binned.codes[f];
        for &r in &node.rows {
            let b = codes[r as usize] as usize;
            count[b] += 1.0;
            sum[b] += residuals[r as usize];
        }
        let mut c_acc = 0.0;
        let mut s_acc = 0.0;
        for b in 0..nbins - 1 {
            c_acc += count[b];
            s_acc += sum[b];
            if c_acc < min_leaf as f64 || c_total - c_acc < min_leaf as f64 {
                continue;
            }
            if let Some(gain) = variance_reduction(c_total, s_total, c_acc, s_acc) {
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, b, gain));
                }
            }
        }
    }
    let (f, b, gain) = best?;
    let threshold = binned.edges[f][b];
    let mask: Vec<bool> = node
        .rows
        .iter()
        .map(|&r| binned.codes[f][r as usize] as usize <= b)
        .collect();
    Some((f, threshold, gain, mask))
}

fn check_memory(params: &LgbmParams, bytes: usize) -> joinboost::Result<()> {
    if let Some(limit) = params.memory_limit_bytes {
        if bytes > limit {
            return Err(joinboost::TrainError::Invalid(format!(
                "out of memory: needs {bytes} bytes, limit {limit}"
            )));
        }
    }
    Ok(())
}

fn grow_tree(
    binned: &Binned,
    data: &FlatDataset,
    residuals: &[f64],
    rows: Vec<u32>,
    feats: &[usize],
    params: &LgbmParams,
) -> Tree {
    let sum: f64 = rows.iter().map(|&r| residuals[r as usize]).sum();
    let weight = rows.len() as f64;
    let mut tree = Tree::single_leaf(if weight > 0.0 { sum / weight } else { 0.0 }, weight);
    // (gain, node, (feature, threshold, left-mask))
    type Pending = (f64, NodeState, (usize, f64, Vec<bool>));
    let mut heap: Vec<Pending> = Vec::new();
    let root = NodeState {
        rows,
        sum,
        depth: 0,
        tree_index: 0,
    };
    if let Some((f, t, g, mask)) =
        best_split(binned, residuals, &root, feats, params.min_data_in_leaf)
    {
        heap.push((g, root, (f, t, mask)));
    }
    let mut leaves = 1;
    while leaves < params.num_leaves {
        // Best-first: pop max gain.
        let Some(pos) = heap
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1 .0
                    .partial_cmp(&b.1 .0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let (_, node, (f, threshold, mask)) = heap.swap_remove(pos);
        let mut lrows = Vec::new();
        let mut rrows = Vec::new();
        for (&r, &left) in node.rows.iter().zip(&mask) {
            if left {
                lrows.push(r);
            } else {
                rrows.push(r);
            }
        }
        let lsum: f64 = lrows.iter().map(|&r| residuals[r as usize]).sum();
        let rsum = node.sum - lsum;
        let left_id = tree.nodes.len();
        let right_id = left_id + 1;
        tree.nodes.push(TreeNode {
            split: None,
            left: 0,
            right: 0,
            value: lsum / lrows.len().max(1) as f64,
            weight: lrows.len() as f64,
            depth: node.depth + 1,
        });
        tree.nodes.push(TreeNode {
            split: None,
            left: 0,
            right: 0,
            value: rsum / rrows.len().max(1) as f64,
            weight: rrows.len() as f64,
            depth: node.depth + 1,
        });
        tree.nodes[node.tree_index].split = Some(Split {
            feature: data.feature_names[f].clone(),
            relation: "flat".into(),
            cond: SplitCondition::LtEq(threshold),
            default_left: false,
        });
        tree.nodes[node.tree_index].left = left_id;
        tree.nodes[node.tree_index].right = right_id;
        leaves += 1;
        for (rows, sum, idx) in [(lrows, lsum, left_id), (rrows, rsum, right_id)] {
            let child = NodeState {
                rows,
                sum,
                depth: node.depth + 1,
                tree_index: idx,
            };
            if let Some((f, t, g, mask)) =
                best_split(binned, residuals, &child, feats, params.min_data_in_leaf)
            {
                heap.push((g, child, (f, t, mask)));
            }
        }
    }
    tree
}

/// Assign each row to its leaf value (multi-threaded, like LightGBM's
/// parallel residual update) and subtract `lr · leaf` from the residuals.
fn parallel_residual_update(
    tree: &Tree,
    binned: &Binned,
    data: &FlatDataset,
    residuals: &mut [f64],
    lr: f64,
    threads: usize,
) {
    let _ = binned;
    let n = residuals.len();
    let chunk = n.div_ceil(threads.max(1));
    crossbeam::thread::scope(|scope| {
        for (ci, slice) in residuals.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            let data = &data;
            scope.spawn(move |_| {
                for (i, r) in slice.iter_mut().enumerate() {
                    let row = base + i;
                    let v = predict_flat(tree, data, row);
                    *r -= lr * v;
                }
            });
        }
    })
    .expect("update scope");
}

fn predict_flat(tree: &Tree, data: &FlatDataset, row: usize) -> f64 {
    let mut i = 0;
    loop {
        let node = &tree.nodes[i];
        match &node.split {
            None => return node.value,
            Some(s) => {
                let f = data
                    .feature_names
                    .iter()
                    .position(|n| n == &s.feature)
                    .expect("known feature");
                let v = data.features[f][row];
                let left = match s.cond {
                    SplitCondition::LtEq(t) => v <= t,
                    SplitCondition::EqNum(t) => v == t,
                    SplitCondition::EqStr(_) => false,
                };
                i = if left && !v.is_nan() {
                    node.left
                } else {
                    node.right
                };
            }
        }
    }
}

/// Train gradient boosting on the flat table (L2).
pub fn train_gbdt(data: &FlatDataset, params: &LgbmParams) -> joinboost::Result<LgbmModel> {
    train_gbdt_cb(data, params, |_, _| {})
}

/// Train with a per-iteration callback.
pub fn train_gbdt_cb(
    data: &FlatDataset,
    params: &LgbmParams,
    mut cb: impl FnMut(usize, &LgbmModel),
) -> joinboost::Result<LgbmModel> {
    let n = data.num_rows();
    if n == 0 {
        return Err(joinboost::TrainError::Invalid("empty dataset".into()));
    }
    // Memory: raw columns + bin codes + residual array.
    check_memory(
        params,
        data.byte_size() + data.features.len() * n * 2 + n * 8,
    )?;
    let t0 = Instant::now();
    let binned = bin_features(data, params.max_bins);
    let init = data.y.iter().sum::<f64>() / n as f64;
    let mut residuals: Vec<f64> = data.y.iter().map(|&y| y - init).collect();
    let feats: Vec<usize> = (0..data.features.len()).collect();
    let all_rows: Vec<u32> = (0..n as u32).collect();
    let mut model = LgbmModel {
        init_score: init,
        learning_rate: params.learning_rate,
        trees: Vec::new(),
        boosted: true,
        train_time: Duration::ZERO,
        update_time: Duration::ZERO,
    };
    for iter in 0..params.num_iterations {
        let tree = grow_tree(&binned, data, &residuals, all_rows.clone(), &feats, params);
        let tu = Instant::now();
        parallel_residual_update(
            &tree,
            &binned,
            data,
            &mut residuals,
            params.learning_rate,
            params.threads,
        );
        model.update_time += tu.elapsed();
        model.trees.push(tree);
        model.train_time = t0.elapsed();
        cb(iter, &model);
    }
    Ok(model)
}

/// Train a random forest on the flat table (bagging + feature sampling,
/// trees in parallel).
pub fn train_rf(data: &FlatDataset, params: &LgbmParams) -> joinboost::Result<LgbmModel> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let n = data.num_rows();
    if n == 0 {
        return Err(joinboost::TrainError::Invalid("empty dataset".into()));
    }
    check_memory(params, data.byte_size() + data.features.len() * n * 2)?;
    let t0 = Instant::now();
    let binned = bin_features(data, params.max_bins);
    let y = &data.y;
    let nf = ((data.features.len() as f64 * params.feature_fraction).ceil() as usize)
        .clamp(1, data.features.len());
    let plans: Vec<(Vec<u32>, Vec<usize>)> = (0..params.num_iterations)
        .map(|t| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed + t as u64);
            let mut rows: Vec<u32> = (0..n as u32).collect();
            rows.shuffle(&mut rng);
            rows.truncate(((n as f64 * params.bagging_fraction).round() as usize).clamp(1, n));
            let mut feats: Vec<usize> = (0..data.features.len()).collect();
            feats.shuffle(&mut rng);
            feats.truncate(nf);
            (rows, feats)
        })
        .collect();
    let trees = std::sync::Mutex::new(vec![None; plans.len()]);
    crossbeam::thread::scope(|scope| {
        for worker in 0..params.threads.max(1) {
            let plans = &plans;
            let trees = &trees;
            let binned = &binned;
            scope.spawn(move |_| {
                for (i, (rows, feats)) in plans.iter().enumerate() {
                    if i % params.threads.max(1) != worker {
                        continue;
                    }
                    let tree = grow_tree(binned, data, y, rows.clone(), feats, params);
                    trees.lock().expect("rf lock")[i] = Some(tree);
                }
            });
        }
    })
    .expect("rf scope");
    let trees: Vec<Tree> = trees
        .into_inner()
        .expect("rf lock")
        .into_iter()
        .map(|t| t.expect("trained"))
        .collect();
    Ok(LgbmModel {
        init_score: 0.0,
        learning_rate: 1.0,
        trees,
        boosted: false,
        train_time: t0.elapsed(),
        update_time: Duration::ZERO,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_semiring::loss::rmse;

    fn toy() -> FlatDataset {
        // y = 3·a + noiseless step on b.
        let n = 400;
        let a: Vec<f64> = (0..n).map(|i| (i % 20) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i / 20) % 5) as f64).collect();
        let y: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(&a, &b)| 3.0 * a + 10.0 * (b > 2.0) as i64 as f64)
            .collect();
        FlatDataset {
            feature_names: vec!["a".into(), "b".into()],
            features: vec![a, b],
            y,
        }
    }

    #[test]
    fn gbdt_fits_toy_function() {
        let data = toy();
        let params = LgbmParams {
            num_iterations: 60,
            learning_rate: 0.3,
            num_leaves: 16,
            ..Default::default()
        };
        let model = train_gbdt(&data, &params).unwrap();
        let preds: Vec<f64> = (0..data.num_rows())
            .map(|i| {
                model.init_score
                    + model.learning_rate
                        * model
                            .trees
                            .iter()
                            .map(|t| predict_flat(t, &data, i))
                            .sum::<f64>()
            })
            .collect();
        let r = rmse(&data.y, &preds);
        assert!(r < 2.0, "rmse {r}");
        assert!(model.update_time > Duration::ZERO);
    }

    #[test]
    fn rf_reduces_error() {
        let data = toy();
        let params = LgbmParams {
            num_iterations: 12,
            bagging_fraction: 0.6,
            feature_fraction: 1.0,
            num_leaves: 16,
            ..Default::default()
        };
        let model = train_rf(&data, &params).unwrap();
        assert_eq!(model.trees.len(), 12);
        let preds: Vec<f64> = (0..data.num_rows())
            .map(|i| {
                model
                    .trees
                    .iter()
                    .map(|t| predict_flat(t, &data, i))
                    .sum::<f64>()
                    / model.trees.len() as f64
            })
            .collect();
        let mean = data.y.iter().sum::<f64>() / data.y.len() as f64;
        let base = rmse(&data.y, &vec![mean; data.y.len()]);
        assert!(rmse(&data.y, &preds) < base);
    }

    #[test]
    fn memory_limit_aborts() {
        let data = toy();
        let params = LgbmParams {
            memory_limit_bytes: Some(1024),
            ..Default::default()
        };
        let err = train_gbdt(&data, &params).unwrap_err();
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn binning_respects_max_bins() {
        let data = toy();
        let b = bin_features(&data, 4);
        assert!(b.edges[0].len() <= 4);
        // Codes are within range.
        for &c in &b.codes[0] {
            assert!((c as usize) < b.edges[0].len());
        }
    }
}
