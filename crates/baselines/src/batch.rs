//! `Batch`: LMFAO-style factorized training without cross-node message
//! sharing (Figure 16a).
//!
//! LMFAO batches the group-by aggregates of a *single* tree node and
//! optimizes them together (aggregate pushdown + merged views ≈ message
//! passing with intra-node reuse), but recomputes everything for the next
//! node. The paper isolates this by running JoinBoost's own pipeline with
//! the message cache cleared per node; we do exactly that.

use joinboost::trainer::{train_decision_tree_opts, TrainStats};
use joinboost::tree::Tree;
use joinboost::{Dataset, TrainParams};

/// Train a decision tree with per-node message batching only.
pub fn train_batch_tree(
    set: &Dataset,
    params: &TrainParams,
) -> joinboost::Result<(Tree, TrainStats)> {
    train_decision_tree_opts(set, params, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost::trainer::train_decision_tree;
    use joinboost_datagen::{favorita, FavoritaConfig};
    use joinboost_engine::Database;

    #[test]
    fn batch_returns_the_same_tree_with_more_message_queries() {
        let gen = favorita(&FavoritaConfig {
            fact_rows: 1500,
            dim_rows: 15,
            ..Default::default()
        });
        let db = Database::in_memory();
        gen.load_into(&db).unwrap();
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let params = TrainParams::default();
        let (shared_tree, shared_stats) = train_decision_tree(&set, &params).unwrap();
        let set2 = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let (batch_tree, batch_stats) = train_batch_tree(&set2, &params).unwrap();
        assert_eq!(shared_tree, batch_tree, "sharing is a pure optimization");
        assert!(
            batch_stats.message_queries > shared_stats.message_queries,
            "batch {} must exceed shared {}",
            batch_stats.message_queries,
            shared_stats.message_queries
        );
    }
}
