//! `MADLib`-like baseline: non-factorized training on a row-oriented
//! engine with tuple-at-a-time execution (Figure 16b).
//!
//! MADLib extends PostgreSQL with UDF-based training over the materialized
//! join: no factorization, row-at-a-time evaluation. We reproduce those
//! properties by (1) materializing the join and (2) training over the wide
//! table on an engine configured for row-oriented execution.

use std::time::Duration;

use joinboost::backend::{EngineBackend, SqlBackend};
use joinboost::trainer::TrainStats;
use joinboost::tree::Tree;
use joinboost::{Dataset, TrainParams};
use joinboost_engine::{Database, EngineConfig};

/// Build a row-oriented database preloaded with the given tables
/// (PostgreSQL stand-in).
pub fn row_oriented_db(tables: &[(String, joinboost_engine::Table)]) -> Database {
    let db = Database::new(EngineConfig::dbms_x_row());
    for (name, t) in tables {
        db.create_table(name, t.clone()).expect("fresh database");
    }
    db
}

/// As [`row_oriented_db`], but behind the [`SqlBackend`] trait: a labeled
/// row-store backend any baseline or experiment can swap in for a
/// different [`SqlBackend`] implementation.
pub fn row_oriented_backend(tables: &[(String, joinboost_engine::Table)]) -> EngineBackend {
    let backend = EngineBackend::labeled(EngineConfig::dbms_x_row(), "madlib-row");
    for (name, t) in tables {
        backend
            .create_table(name, t.clone())
            .expect("fresh database");
    }
    backend
}

/// Train a decision tree the MADLib way over a dataset bound to a
/// row-oriented database: materialize the join, then train without
/// factorization, tuple at a time.
pub fn train_madlib_tree(
    set: &Dataset,
    params: &TrainParams,
) -> joinboost::Result<(Tree, TrainStats, Duration)> {
    crate::naive::train_naive_tree(set, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_datagen::{favorita, FavoritaConfig};

    #[test]
    fn madlib_path_trains_same_tree_but_slower_engine() {
        let gen = favorita(&FavoritaConfig {
            fact_rows: 600,
            dim_rows: 8,
            ..Default::default()
        });
        // Columnar reference.
        let col_db = Database::in_memory();
        gen.load_into(&col_db).unwrap();
        let col_set = Dataset::new(&col_db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let params = TrainParams::default();
        let (col_tree, _) = joinboost::train_decision_tree(&col_set, &params).unwrap();

        // Row-oriented MADLib stand-in, through the backend trait.
        let row_db = row_oriented_backend(&gen.tables);
        let row_set = Dataset::new(&row_db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let (row_tree, _, _) = train_madlib_tree(&row_set, &params).unwrap();
        // Identical structure — the `relation` label differs because the
        // wide table owns every feature after materialization.
        assert_eq!(col_tree.nodes.len(), row_tree.nodes.len());
        for (a, b) in col_tree.nodes.iter().zip(&row_tree.nodes) {
            assert_eq!(
                a.split.as_ref().map(|s| (&s.feature, &s.cond)),
                b.split.as_ref().map(|s| (&s.feature, &s.cond))
            );
            assert!((a.value - b.value).abs() < 1e-9);
            assert_eq!(a.weight, b.weight);
        }
    }
}
