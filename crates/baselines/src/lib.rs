//! Reimplemented comparators for the JoinBoost evaluation.
//!
//! The paper compares against LightGBM/XGBoost/Sklearn (specialized ML
//! libraries), LMFAO (factorized in-DB ML with a custom engine) and MADLib
//! (non-factorized in-DB ML). None of those are linkable here, so this
//! crate rebuilds the *property* each comparison depends on:
//!
//! * [`lightgbm`] — a single-table histogram GBDT/RF over flat `f64`
//!   arrays with multi-threaded residual updates. Like the real library it
//!   must first **materialize, export and load** the join (the dotted
//!   "Join+Export" line in Figure 8); after that, its residual update is a
//!   parallel array write (the red line in Figure 5).
//! * [`exact`] — an exact (non-binned) single-table variance-tree trainer
//!   that mirrors the factorized trainer's split rule bit-for-bit; used to
//!   verify that factorized training returns *identical models*.
//! * [`naive`] — materialize the join inside the DBMS and train over the
//!   wide table with SQL but no factorization (the `Naive` bar of
//!   Figure 16a).
//! * [`batch`] — per-node batched factorized training *without* the
//!   cross-node message cache: LMFAO's logical optimizations (aggregate
//!   pushdown + per-node batching) as pure SQL (the `Batch` bar of
//!   Figure 16a; the paper's own LMFAO ablation).
//! * [`madlib`] — non-factorized training on a row-oriented engine with
//!   tuple-at-a-time execution (the MADLib comparison of Figure 16b).
//!
//! Every baseline runs through [`joinboost::backend::SqlBackend`] (a
//! [`joinboost::Dataset`] holds `&dyn SqlBackend`), so each comparison can
//! be replayed against the engine, the SQL-text path, or the sharded
//! fan-out backend without touching baseline code.

pub mod batch;
pub mod exact;
pub mod lightgbm;
pub mod madlib;
pub mod naive;

pub use exact::train_exact_tree;
pub use lightgbm::{export_join, ExportStats, FlatDataset, LgbmModel, LgbmParams};
