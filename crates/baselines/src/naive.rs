//! `Naive`: materialize the join inside the DBMS, then train over the
//! wide table with SQL but without factorization (Figure 16a).

use std::time::{Duration, Instant};

use joinboost::trainer::{train_decision_tree, TrainStats};
use joinboost::tree::Tree;
use joinboost::{Dataset, TrainParams};
use joinboost_graph::JoinGraph;

/// Materialize `R⋈` into a temp table and return a single-relation dataset
/// over it (plus the materialization time). Works for any SQL training
/// that follows.
pub fn materialize_wide<'a>(set: &Dataset<'a>) -> joinboost::Result<(Dataset<'a>, Duration)> {
    let wide = set.fresh_table("wide");
    let q = joinboost::predict::features_query(set);
    let t0 = Instant::now();
    set.db
        .execute(&format!("CREATE TABLE {wide} AS {q}"))
        .map_err(|e| joinboost::TrainError::Engine(format!("{e} in: {q}")))?;
    let mat_time = t0.elapsed();
    let mut g = JoinGraph::new();
    let feats: Vec<String> = set.features().into_iter().map(|(f, _)| f).collect();
    let feat_refs: Vec<&str> = feats.iter().map(String::as_str).collect();
    g.add_relation(&wide, &feat_refs)?;
    let mut wide_set = Dataset::new(set.db, g, &wide, "jb_target")?;
    // Preserve feature kinds (the wide table loses the original typing
    // only for overridden categorical numerics).
    for f in &feats {
        if set.feature_kind(f) == joinboost::FeatureKind::Categorical {
            wide_set.set_categorical(f);
        }
    }
    Ok((wide_set, mat_time))
}

/// Train a decision tree the naive way: materialize, then single-table SQL
/// training. Returns the tree, its stats and the materialization time.
pub fn train_naive_tree(
    set: &Dataset,
    params: &TrainParams,
) -> joinboost::Result<(Tree, TrainStats, Duration)> {
    let (wide_set, mat_time) = materialize_wide(set)?;
    let (tree, stats) = train_decision_tree(&wide_set, params)?;
    wide_set.drop_temp_tables();
    Ok((tree, stats, mat_time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_datagen::{favorita, FavoritaConfig};
    use joinboost_engine::Database;

    #[test]
    fn naive_tree_matches_factorized_tree() {
        // The central correctness claim: factorization is a pure
        // optimization — same tree either way.
        let gen = favorita(&FavoritaConfig {
            fact_rows: 800,
            dim_rows: 10,
            ..Default::default()
        });
        let db = Database::in_memory();
        gen.load_into(&db).unwrap();
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let params = TrainParams::default();
        let (factorized, _) = train_decision_tree(&set, &params).unwrap();
        let (naive, _, mat_time) = train_naive_tree(&set, &params).unwrap();
        // Structures must be identical (feature names, thresholds, values).
        assert_eq!(factorized.num_leaves(), naive.num_leaves());
        for (a, b) in factorized.nodes.iter().zip(&naive.nodes) {
            match (&a.split, &b.split) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.feature, y.feature);
                    assert_eq!(x.cond, y.cond);
                }
                (None, None) => {
                    assert!((a.value - b.value).abs() < 1e-9);
                    assert_eq!(a.weight, b.weight);
                }
                other => panic!("structure mismatch: {other:?}"),
            }
        }
        assert!(mat_time > Duration::ZERO);
    }
}
