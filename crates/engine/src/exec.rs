//! Query execution: joins, filters, grouping/aggregation, window functions,
//! ordering. One materializing operator at a time — the same execution
//! style the paper's generated SPJA queries assume.

use joinboost_sql::ast::{Expr, Join, JoinKind, Query, TableRef};

use crate::agg::PreparedAgg;
use crate::column::Column;
use crate::datum::Datum;
use crate::db::{Database, ExecMode};
use crate::error::{EngineError, Result};
use crate::expr::{eval, eval_row, EvalContext, SubqueryRunner};
use crate::keys::{group_rows, JoinIndex, SortKeys};
use crate::table::{ColumnMeta, Table};

/// Aggregate function names.
const AGGS: [&str; 5] = ["SUM", "COUNT", "AVG", "MIN", "MAX"];

/// Executes queries against a [`Database`].
pub struct Executor<'a> {
    /// The database whose catalog the query reads.
    pub db: &'a Database,
    /// Columnar vs row evaluation (from the database config).
    pub mode: ExecMode,
}

impl SubqueryRunner for Executor<'_> {
    fn run_subquery(&self, q: &Query) -> Result<Table> {
        self.query(q)
    }
}

impl<'a> Executor<'a> {
    /// An executor in the database's configured execution mode.
    pub fn new(db: &'a Database) -> Self {
        let mode = db.config().exec;
        Executor { db, mode }
    }

    /// Execute a `SELECT` query to a materialized table.
    pub fn query(&self, q: &Query) -> Result<Table> {
        let ctx = EvalContext::new(self);
        self.query_with_ctx(q, &ctx)
    }

    fn query_with_ctx(&self, q: &Query, ctx: &EvalContext) -> Result<Table> {
        // FROM + JOINs.
        let mut input = match &q.from {
            Some(tref) => self.table_ref(tref)?,
            None => dummy_table(),
        };
        for j in &q.joins {
            input = self.join(input, j, ctx)?;
        }
        // WHERE.
        if let Some(pred) = &q.where_clause {
            let mask = self.predicate_mask(pred, &input, ctx)?;
            input = input.filter(&mask);
        }
        // Aggregation or plain projection.
        let has_agg =
            !q.group_by.is_empty() || q.items.iter().any(|it| contains_aggregate(&it.expr));
        let mut output = if has_agg {
            self.aggregate(q, &input, ctx)?
        } else {
            self.project(q, &input, ctx)?
        };
        // ORDER BY (resolved against the projection first, then the input).
        // Sort keys are extracted once into a comparable form (dict ranks
        // for strings, f64 for numerics) — no Datum materialization or
        // String clone per comparison.
        let mut limit_applied = false;
        if !q.order_by.is_empty() {
            let n = output.num_rows();
            let mut sort_cols: Vec<Column> = Vec::with_capacity(q.order_by.len());
            for item in &q.order_by {
                let col = match eval(&item.expr, &output, ctx) {
                    Ok(c) => c,
                    Err(_) if !has_agg => eval(&item.expr, &input, ctx)?,
                    Err(e) => return Err(e),
                };
                if col.len() != n {
                    return Err(EngineError::Other("ORDER BY arity mismatch".into()));
                }
                sort_cols.push(col);
            }
            let descs: Vec<bool> = q.order_by.iter().map(|o| o.desc).collect();
            let keys = SortKeys::new(sort_cols, &descs);
            match q.limit {
                // Top-k pushdown: ORDER BY + LIMIT k selects the k winners
                // with a bounded insertion set — O(n log k) instead of a
                // full O(n log n) sort (sqlgen's split queries use k = 1).
                Some(l) if (l as usize) < n && (l as usize) <= TOP_K_MAX => {
                    let winners = keys.top_k(n, l as usize);
                    output = output.take(&winners);
                    limit_applied = true;
                }
                _ => {
                    let perm = keys.sort_permutation(n);
                    output = output.take(&perm);
                }
            }
        }
        // LIMIT (cheap prefix truncation; no index vector + gather).
        if let Some(l) = q.limit {
            if !limit_applied {
                let keep = (l as usize).min(output.num_rows());
                if keep < output.num_rows() {
                    output = output.head(keep);
                }
            }
        }
        Ok(output)
    }

    fn table_ref(&self, tref: &TableRef) -> Result<Table> {
        match tref {
            TableRef::Named { name, alias } => {
                let t = self.db.snapshot(name)?;
                let binding = alias.as_deref().unwrap_or(name);
                Ok(t.with_qualifier(binding))
            }
            TableRef::Subquery { query, alias } => {
                let t = self.query(query)?;
                match alias {
                    Some(a) => Ok(t.unqualified().with_qualifier(a)),
                    None => Ok(t.unqualified()),
                }
            }
        }
    }

    fn predicate_mask(&self, pred: &Expr, table: &Table, ctx: &EvalContext) -> Result<Vec<bool>> {
        let n = table.num_rows();
        match self.mode {
            ExecMode::Columnar => {
                let c = eval(pred, table, ctx)?;
                Ok((0..n).map(|i| c.get(i).is_truthy()).collect())
            }
            ExecMode::Row => {
                let mut mask = Vec::with_capacity(n);
                for i in 0..n {
                    mask.push(eval_row(pred, table, i, ctx)?.is_truthy());
                }
                Ok(mask)
            }
        }
    }

    // ---- joins -----------------------------------------------------------

    fn join(&self, left: Table, join: &Join, ctx: &EvalContext) -> Result<Table> {
        let right = self.table_ref(&join.table)?;
        if join.using.is_empty() {
            return self.nested_loop_join(left, right, join, ctx);
        }
        let lkeys: Vec<usize> = join
            .using
            .iter()
            .map(|k| left.resolve(None, k))
            .collect::<Result<_>>()?;
        let rkeys: Vec<usize> = join
            .using
            .iter()
            .map(|k| right.resolve(None, k))
            .collect::<Result<_>>()?;
        // Build a hash index on the right side over flat encoded keys
        // (u64 fast path for int keys, byte-packed fallback otherwise) —
        // no per-row Vec<HKey> or String clone on either side.
        let rn = right.num_rows();
        let ln = left.num_rows();
        let lkey_cols: Vec<&Column> = lkeys.iter().map(|&k| &left.columns[k]).collect();
        let rkey_cols: Vec<&Column> = rkeys.iter().map(|&k| &right.columns[k]).collect();
        let index = JoinIndex::build(&lkey_cols, &rkey_cols, ln, rn);
        let mut lidx: Vec<u32> = Vec::with_capacity(ln);
        let mut ridx: Vec<Option<u32>> = Vec::with_capacity(ln);
        let mut rmatched = vec![false; rn];
        for i in 0..ln {
            let matches = index.probe(i);
            match (join.kind, matches) {
                (JoinKind::Inner, Some(rows)) => {
                    for &r in rows {
                        lidx.push(i as u32);
                        ridx.push(Some(r));
                        rmatched[r as usize] = true;
                    }
                }
                (JoinKind::Inner, None) => {}
                (JoinKind::Left | JoinKind::Full, Some(rows)) => {
                    for &r in rows {
                        lidx.push(i as u32);
                        ridx.push(Some(r));
                        rmatched[r as usize] = true;
                    }
                }
                (JoinKind::Left | JoinKind::Full, None) => {
                    lidx.push(i as u32);
                    ridx.push(None);
                }
                (JoinKind::Semi, Some(rows)) => {
                    if !rows.is_empty() {
                        lidx.push(i as u32);
                        ridx.push(None);
                    }
                }
                (JoinKind::Semi, None) => {}
            }
        }
        if join.kind == JoinKind::Semi {
            // Semi join: left columns only, annotations unchanged.
            let mut out = left.take(&lidx);
            if let Some(on) = &join.on {
                let mask = self.predicate_mask(on, &out, ctx)?;
                out = out.filter(&mask);
            }
            return Ok(out);
        }
        let mut out = assemble_join(&left, &right, &join.using, &lkeys, &rkeys, &lidx, &ridx);
        if join.kind == JoinKind::Full {
            // Append unmatched right rows (left side NULL).
            let extra: Vec<u32> = (0..rn as u32).filter(|&r| !rmatched[r as usize]).collect();
            if !extra.is_empty() {
                let extra_tbl = assemble_right_only(&left, &right, &join.using, &rkeys, &extra);
                out = concat_tables(out, extra_tbl)?;
            }
        }
        if let Some(on) = &join.on {
            if join.kind == JoinKind::Inner {
                let mask = self.predicate_mask(on, &out, ctx)?;
                out = out.filter(&mask);
            } else {
                return Err(EngineError::Other(
                    "ON predicates are only supported on inner/semi joins".into(),
                ));
            }
        }
        Ok(out)
    }

    fn nested_loop_join(
        &self,
        left: Table,
        right: Table,
        join: &Join,
        ctx: &EvalContext,
    ) -> Result<Table> {
        if join.kind != JoinKind::Inner {
            return Err(EngineError::Other(
                "only inner joins may omit USING keys".into(),
            ));
        }
        let (ln, rn) = (left.num_rows(), right.num_rows());
        let mut lidx = Vec::with_capacity(ln * rn.min(4));
        let mut ridx = Vec::with_capacity(ln * rn.min(4));
        for i in 0..ln as u32 {
            for j in 0..rn as u32 {
                lidx.push(i);
                ridx.push(Some(j));
            }
        }
        let mut out = assemble_join(&left, &right, &[], &[], &[], &lidx, &ridx);
        if let Some(on) = &join.on {
            let mask = self.predicate_mask(on, &out, ctx)?;
            out = out.filter(&mask);
        }
        Ok(out)
    }

    // ---- projection / aggregation -----------------------------------------

    fn project(&self, q: &Query, input: &Table, ctx: &EvalContext) -> Result<Table> {
        let mut out = Table::new();
        for (i, item) in q.items.iter().enumerate() {
            if matches!(item.expr, Expr::Wildcard) {
                for (m, c) in input.meta.iter().zip(&input.columns) {
                    if m.name.starts_with("__") {
                        continue;
                    }
                    out.push_column(ColumnMeta::new(m.name.clone()), c.clone());
                }
                continue;
            }
            let col = match self.mode {
                ExecMode::Columnar => eval(&item.expr, input, ctx)?,
                ExecMode::Row => {
                    let n = input.num_rows();
                    let mut vals = Vec::with_capacity(n);
                    for r in 0..n {
                        vals.push(eval_row(&item.expr, input, r, ctx)?);
                    }
                    Column::from_datums(&vals)
                }
            };
            out.push_column(ColumnMeta::new(item_name(item, i)), col);
        }
        Ok(out)
    }

    fn aggregate(&self, q: &Query, input: &Table, ctx: &EvalContext) -> Result<Table> {
        let n = input.num_rows();
        // 1. Group ids (vectorized: keys packed into a u64 or a flat byte
        // buffer — no per-row Vec<HKey> allocation).
        let key_cols: Vec<Column> = q
            .group_by
            .iter()
            .map(|e| eval(e, input, ctx))
            .collect::<Result<_>>()?;
        let (gids, num_groups, rep_rows, sizes) = if key_cols.is_empty() {
            (vec![0u32; n], 1usize, vec![0u32], vec![n as u32])
        } else {
            let refs: Vec<&Column> = key_cols.iter().collect();
            let g = group_rows(&refs, n);
            (g.gids, g.num_groups, g.reps, g.sizes)
        };
        // 2. Collect unique aggregate calls from the select list.
        let mut aggs: Vec<Expr> = Vec::new();
        for item in &q.items {
            collect_aggregates(&item.expr, &mut aggs);
        }
        // 3. Evaluate every aggregate's argument once, then fill all
        // accumulator banks in a single fused pass (optionally in
        // parallel — see `agg` module docs for the determinism argument).
        let mut prepared: Vec<PreparedAgg> = Vec::with_capacity(aggs.len());
        for agg in &aggs {
            prepared.push(self.prepare_aggregate(agg, input, ctx)?);
        }
        // Paged engines spill accumulator banks that exceed the configured
        // budget, slicing the group-id space (bit-identical; see `agg`).
        let spill = self.db.spill_target().filter(|&(_, budget)| {
            num_groups > 1 && crate::agg::bank_bytes(&prepared, num_groups) > budget
        });
        let agg_cols = match spill {
            Some((store, budget)) => crate::agg::compute_grouped_spilled(
                &prepared,
                &gids,
                num_groups,
                Some(&sizes),
                self.db.config().agg_threads,
                store,
                budget,
            )?,
            None => crate::agg::compute_grouped(
                &prepared,
                &gids,
                num_groups,
                Some(&sizes),
                self.db.config().agg_threads,
            ),
        };
        // 4. Synthetic table: group keys (named __key{i}) + aggregates.
        let mut synth = Table::new();
        for (i, kc) in key_cols.iter().enumerate() {
            synth.push_column(ColumnMeta::new(format!("__key{i}")), kc.take(&rep_rows));
        }
        for (i, ac) in agg_cols.into_iter().enumerate() {
            synth.push_column(ColumnMeta::new(format!("__agg{i}")), ac);
        }
        // 5. Rewrite select items over the synthetic table and evaluate.
        let mut out = Table::new();
        for (i, item) in q.items.iter().enumerate() {
            let rewritten = rewrite_post_agg(&item.expr, &q.group_by, &aggs)?;
            let col = eval(&rewritten, &synth, ctx)?;
            out.push_column(ColumnMeta::new(item_name(item, i)), col);
        }
        Ok(out)
    }

    /// Evaluate one aggregate's argument (once) into the typed form the
    /// fused accumulator pass consumes.
    fn prepare_aggregate(
        &self,
        agg: &Expr,
        input: &Table,
        ctx: &EvalContext,
    ) -> Result<PreparedAgg> {
        let Expr::Func { name, args } = agg else {
            return Err(EngineError::Other("not an aggregate".into()));
        };
        let n = input.num_rows();
        let is_count_star = name == "COUNT" && matches!(args.first(), Some(Expr::Wildcard));
        let arg_col: Option<Column> = if is_count_star {
            None
        } else {
            let a = args.first().ok_or_else(|| {
                EngineError::Other(format!("aggregate {name} requires an argument"))
            })?;
            Some(match self.mode {
                ExecMode::Columnar => eval(a, input, ctx)?,
                ExecMode::Row => {
                    let mut vals = Vec::with_capacity(n);
                    for r in 0..n {
                        vals.push(eval_row(a, input, r, ctx)?);
                    }
                    Column::from_datums(&vals)
                }
            })
        };
        PreparedAgg::new(name, arg_col)
    }
}

/// Largest `LIMIT` the bounded top-k selection handles; larger limits run
/// the full sort (insertion into the winner set is O(k) per improving row).
const TOP_K_MAX: usize = 64;

/// `true` if the expression contains an aggregate function call.
pub fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Func { name, args } => {
            AGGS.contains(&name.as_str()) || args.iter().any(contains_aggregate)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Case { whens, else_expr } => {
            whens
                .iter()
                .any(|(c, t)| contains_aggregate(c) || contains_aggregate(t))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InSubquery { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Func { name, args } if AGGS.contains(&name.as_str()) => {
            if !out.contains(e) {
                out.push(e.clone());
            }
            // Aggregates cannot nest; no need to recurse into args.
            let _ = args;
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        Expr::Case { whens, else_expr } => {
            for (c, t) in whens {
                collect_aggregates(c, out);
                collect_aggregates(t, out);
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for i in list {
                collect_aggregates(i, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        _ => {}
    }
}

/// Rewrite a post-aggregation expression: group-by expressions become
/// `__key{i}` references, aggregate calls become `__agg{i}` references.
fn rewrite_post_agg(e: &Expr, keys: &[Expr], aggs: &[Expr]) -> Result<Expr> {
    if let Some(i) = keys.iter().position(|k| k == e) {
        return Ok(Expr::col(format!("__key{i}")));
    }
    if let Some(i) = aggs.iter().position(|a| a == e) {
        return Ok(Expr::col(format!("__agg{i}")));
    }
    match e {
        Expr::Literal(_) => Ok(e.clone()),
        Expr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(rewrite_post_agg(left, keys, aggs)?),
            right: Box::new(rewrite_post_agg(right, keys, aggs)?),
        }),
        Expr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_post_agg(expr, keys, aggs)?),
        }),
        Expr::Func { name, args } => Ok(Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_post_agg(a, keys, aggs))
                .collect::<Result<_>>()?,
        }),
        Expr::Case { whens, else_expr } => Ok(Expr::Case {
            whens: whens
                .iter()
                .map(|(c, t)| {
                    Ok((
                        rewrite_post_agg(c, keys, aggs)?,
                        rewrite_post_agg(t, keys, aggs)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite_post_agg(e, keys, aggs)?)),
                None => None,
            },
        }),
        Expr::Column { .. } => Err(EngineError::Other(format!(
            "column {e} must appear in GROUP BY or inside an aggregate"
        ))),
        other => Err(EngineError::Other(format!(
            "unsupported post-aggregation expression {other}"
        ))),
    }
}

fn item_name(item: &joinboost_sql::ast::SelectItem, index: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        Expr::Column { name, .. } => name.clone(),
        _ => format!("col{index}"),
    }
}

fn dummy_table() -> Table {
    Table::from_columns(vec![("__dummy", Column::int(vec![0]))])
}

/// Assemble a join result: all left columns, merged USING keys, and right
/// columns minus the key columns.
fn assemble_join(
    left: &Table,
    right: &Table,
    using: &[String],
    lkeys: &[usize],
    rkeys: &[usize],
    lidx: &[u32],
    ridx: &[Option<u32>],
) -> Table {
    let _ = using;
    let mut out = Table::new();
    for (ci, (m, c)) in left.meta.iter().zip(&left.columns).enumerate() {
        if lkeys.contains(&ci) {
            // Merged key column: take from left (NULL rows only arise in
            // FULL-join right-extension, handled separately).
            out.push_column(m.clone(), c.take(lidx));
        } else {
            out.push_column(m.clone(), c.take(lidx));
        }
    }
    for (ci, (m, c)) in right.meta.iter().zip(&right.columns).enumerate() {
        if rkeys.contains(&ci) {
            continue; // USING merges key columns
        }
        out.push_column(m.clone(), c.take_nullable(ridx));
    }
    out
}

/// Rows of a FULL join that exist only on the right: left columns are NULL
/// except the merged key columns, which take the right values.
fn assemble_right_only(
    left: &Table,
    right: &Table,
    using: &[String],
    rkeys: &[usize],
    extra: &[u32],
) -> Table {
    let mut out = Table::new();
    let nulls: Vec<Option<u32>> = vec![None; extra.len()];
    for (ci, (m, c)) in left.meta.iter().zip(&left.columns).enumerate() {
        let key_pos = using
            .iter()
            .position(|k| m.name.eq_ignore_ascii_case(k))
            .filter(|_| {
                // Only the actual key column instance merges.
                left.resolve(None, &m.name)
                    .map(|r| r == ci)
                    .unwrap_or(false)
            });
        match key_pos {
            Some(kp) => {
                let rc = &right.columns[rkeys[kp]];
                out.push_column(m.clone(), rc.take(extra));
            }
            None => out.push_column(m.clone(), c.take_nullable(&nulls)),
        }
    }
    for (ci, (m, c)) in right.meta.iter().zip(&right.columns).enumerate() {
        if rkeys.contains(&ci) {
            continue;
        }
        out.push_column(m.clone(), c.take(extra));
    }
    out
}

/// Vertically concatenate two tables with identical layouts.
fn concat_tables(a: Table, b: Table) -> Result<Table> {
    if a.num_columns() != b.num_columns() {
        return Err(EngineError::Other("concat layout mismatch".into()));
    }
    let mut out = Table::new();
    for ((m, ca), cb) in a.meta.iter().zip(&a.columns).zip(&b.columns) {
        let mut vals: Vec<Datum> = Vec::with_capacity(ca.len() + cb.len());
        for i in 0..ca.len() {
            vals.push(ca.get(i));
        }
        for i in 0..cb.len() {
            vals.push(cb.get(i));
        }
        out.push_column(m.clone(), Column::from_datums(&vals));
    }
    Ok(out)
}
