//! Engine error type.

use std::fmt;

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL could not be parsed.
    Parse(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Column resolution failed (unknown or ambiguous).
    UnknownColumn(String),
    /// Operation not valid for the column's type.
    TypeMismatch(String),
    /// Anything else (unsupported construct, internal invariant, I/O).
    Other(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::TableExists(t) => write!(f, "table already exists: {t}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown or ambiguous column: {c}"),
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<joinboost_sql::ParseError> for EngineError {
    fn from(e: joinboost_sql::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Other(format!("io error: {e}"))
    }
}
