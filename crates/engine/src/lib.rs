//! In-memory columnar SQL engine — the DBMS substrate for JoinBoost.
//!
//! The paper runs JoinBoost against DuckDB and a commercial DBMS ("DBMS-X").
//! This crate is the from-scratch Rust substitute: it executes exactly the
//! SQL subset JoinBoost emits (see `joinboost-sql`) over an in-memory
//! columnar store, and implements the storage-engine mechanisms whose costs
//! drive the paper's systems findings:
//!
//! * **columnar vs row execution** (`X-col` vs `X-row` in the paper) —
//!   [`ExecMode`],
//! * **write-ahead logging** — every write is encoded and appended to a log
//!   file before it is applied ([`wal`]),
//! * **MVCC-style versioning** — updates first copy the before-image of the
//!   touched column into an undo buffer ([`db`]),
//! * **lightweight columnar compression** — tables can be stored
//!   run-length-encoded; updates must decompress, modify and recompress
//!   ([`compress`]),
//! * **column swap** — the paper's <100-LOC DuckDB extension: an O(1)
//!   schema-level pointer swap of a column between two tables, bypassing
//!   WAL, MVCC and compression entirely (`SWAP COLUMN a.x WITH b.y`),
//! * **interop (dataframe) storage** — a table can be held in an external
//!   uncompressed array store that is copied into the engine on every scan
//!   (the DuckDB+Pandas `DP` backend) but supports O(1) column replacement
//!   ([`interop`]),
//! * **partitioned execution** — hash-partition a fact table over N worker
//!   threads ("machines") with an explicit shuffle/merge stage
//!   ([`partition`]),
//! * **out-of-core paged storage** — tables live in fixed-size pages on
//!   disk behind a capacity-bounded buffer pool (Clock or LRU), scans pin
//!   pages one at a time, aggregation state spills above a budget, and
//!   committed state survives crashes via WAL replay ([`storage`]).
//!
//! Entry point: [`Database`].
//!
//! ```
//! use joinboost_engine::{Column, Database, Table};
//!
//! let db = Database::in_memory();
//! db.create_table(
//!     "r",
//!     Table::from_columns(vec![
//!         ("a", Column::int(vec![1, 1, 2])),
//!         ("y", Column::float(vec![2.0, 3.0, 5.0])),
//!     ]),
//! )
//! .unwrap();
//! let t = db
//!     .query("SELECT a, SUM(y) AS s FROM r GROUP BY a ORDER BY a")
//!     .unwrap();
//! assert_eq!(t.num_rows(), 2);
//! assert_eq!(t.column(None, "s").unwrap().f64_at(0), Some(5.0));
//! ```

#![deny(missing_docs)]

pub mod agg;
pub mod checkpoint;
pub mod column;
pub mod compress;
pub mod datum;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod interop;
pub mod keys;
pub mod partition;
pub mod storage;
pub mod table;
pub mod wal;

pub use column::Column;
pub use datum::{DataType, Datum};
pub use db::{Database, EngineConfig, ExecMode, StorageMode};
pub use error::{EngineError, Result};
pub use storage::{BufferPoolStats, Replacement};
pub use table::Table;
