//! Allocation-free key encoding and vectorized grouping, joining and
//! ordering.
//!
//! The split-evaluation queries JoinBoost emits are SPJA group-bys whose
//! cost is dominated by per-row key handling. This module replaces the
//! per-row `Vec<HKey>` materialization previously used by `join()` and
//! `aggregate()` with a [`KeyCodec`] that packs the key columns of a row
//! into either
//!
//! * a single `u64` (fast path — all key columns are int- or
//!   dictionary-coded and their value ranges fit in 64 bits together), or
//! * a byte-packed slice of one flat scratch buffer (fallback — floats,
//!   wide ranges, or join keys whose dictionaries differ per side).
//!
//! On top of the encoding sit three operators: [`group_rows`] (hash
//! grouping to dense group ids), [`JoinIndex`] (build/probe hash join),
//! and [`SortKeys`] (comparable sort keys extracted once, with a bounded
//! top-k selection for `ORDER BY .. LIMIT k`).

use std::cmp::Ordering;

use crate::column::{canonical_f64_bits, Column, ColumnData};

// ---------------------------------------------------------------------------
// Hashing (fxhash-style multiply + murmur finalizer; no external deps).
// ---------------------------------------------------------------------------

#[inline]
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

#[inline]
fn hash_u64(k: u64) -> u64 {
    fmix64(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[inline]
fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    let mut chunks = b.chunks_exact(8);
    for c in &mut chunks {
        h = fmix64(h ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = fmix64(h ^ u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
    }
    h
}

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

/// Per-field packing recipe for the `u64` fast path.
enum PackedField {
    /// Int column: code = value - min + 1 (0 is the NULL code).
    Int { min: i64, shift: u32 },
    /// Dictionary-coded string column: code = dict code + 1 (0 = NULL).
    Dict { shift: u32 },
}

/// How a fixed set of key columns is encoded.
enum Plan {
    /// All fields pack into one u64; `width` is the total bit width.
    Packed {
        fields: Vec<PackedField>,
        width: u32,
    },
    Bytes,
}

/// Encodes the key columns of a row into a comparable, hashable form.
/// Built once per operator; encoding a table is a single pass that fills
/// flat buffers (no per-row allocation).
pub struct KeyCodec {
    plan: Plan,
}

/// Encoded keys for all rows of one table side.
pub enum EncodedKeys {
    /// Every row's key packed into one `u64`.
    U64 {
        /// Packed key per row.
        keys: Vec<u64>,
        /// `nulls[i]` — row i has at least one NULL key component
        /// (joins skip these rows; grouping keeps them).
        nulls: Option<Vec<bool>>,
    },
    /// Variable-width keys byte-packed into one flat buffer.
    Bytes {
        /// Concatenated encoded keys.
        buf: Vec<u8>,
        /// `n + 1` offsets into `buf`.
        offsets: Vec<usize>,
        /// `nulls[i]` — row i has at least one NULL key component.
        nulls: Option<Vec<bool>>,
    },
}

impl EncodedKeys {
    #[inline]
    fn is_null_row(&self, i: usize) -> bool {
        match self {
            EncodedKeys::U64 { nulls, .. } | EncodedKeys::Bytes { nulls, .. } => {
                nulls.as_ref().is_some_and(|v| v[i])
            }
        }
    }

    #[inline]
    fn byte_key(&self, i: usize) -> &[u8] {
        match self {
            EncodedKeys::Bytes { buf, offsets, .. } => &buf[offsets[i]..offsets[i + 1]],
            EncodedKeys::U64 { .. } => unreachable!("byte_key on packed keys"),
        }
    }

    #[inline]
    fn hash_row(&self, i: usize) -> u64 {
        match self {
            EncodedKeys::U64 { keys, .. } => hash_u64(keys[i]),
            EncodedKeys::Bytes { .. } => hash_bytes(self.byte_key(i)),
        }
    }

    #[inline]
    fn rows_equal(&self, a: usize, other: &EncodedKeys, b: usize) -> bool {
        match (self, other) {
            (EncodedKeys::U64 { keys: ka, .. }, EncodedKeys::U64 { keys: kb, .. }) => {
                ka[a] == kb[b]
            }
            (EncodedKeys::Bytes { .. }, EncodedKeys::Bytes { .. }) => {
                self.byte_key(a) == other.byte_key(b)
            }
            _ => unreachable!("mixed key encodings"),
        }
    }
}

/// Bits needed to store codes `0..=max_code`.
fn bits_for(max_code: u128) -> u32 {
    (128 - max_code.leading_zeros()).max(1)
}

/// `true` if every dictionary entry is distinct (dictionaries built by this
/// engine always are, but packed dict codes are only sound if so).
fn dict_is_unique(dict: &[String]) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(dict.len());
    dict.iter().all(|s| seen.insert(s.as_str()))
}

/// Joint min/max over the Int data of several columns (validity ignored:
/// invalid slots hold real i64s and only widen the range).
fn int_range(cols: &[&Column]) -> Option<(i64, i64)> {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    let mut any = false;
    for c in cols {
        if let ColumnData::Int(v) = &c.data {
            for &x in v {
                lo = lo.min(x);
                hi = hi.max(x);
                any = true;
            }
        } else {
            return None;
        }
    }
    if any {
        Some((lo, hi))
    } else {
        Some((0, 0))
    }
}

impl KeyCodec {
    /// Codec for grouping a single table by `cols`. Dictionary codes are
    /// packable because all rows share one dictionary per column.
    pub fn for_grouping(cols: &[&Column]) -> KeyCodec {
        let mut fields = Vec::with_capacity(cols.len());
        let mut shift = 0u32;
        for c in cols {
            let (field, width) = match &c.data {
                ColumnData::Int(_) => match int_range(&[c]) {
                    Some((lo, hi)) => {
                        let codes = (hi as i128 - lo as i128) as u128 + 1;
                        (PackedField::Int { min: lo, shift }, bits_for(codes))
                    }
                    None => return KeyCodec { plan: Plan::Bytes },
                },
                ColumnData::Str { dict, .. } if dict_is_unique(dict) => {
                    (PackedField::Dict { shift }, bits_for(dict.len() as u128))
                }
                _ => return KeyCodec { plan: Plan::Bytes },
            };
            shift += width;
            if shift > 64 {
                return KeyCodec { plan: Plan::Bytes };
            }
            fields.push(field);
        }
        KeyCodec {
            plan: Plan::Packed {
                fields,
                width: shift,
            },
        }
    }

    /// Codec shared by both sides of a join on positionally-matched key
    /// columns. Only all-Int keys pack (string dictionaries differ per
    /// side); everything else uses the canonical byte encoding, whose
    /// per-field type tags preserve the engine's rule that values of
    /// different types never join.
    pub fn for_join(left: &[&Column], right: &[&Column]) -> KeyCodec {
        debug_assert_eq!(left.len(), right.len());
        let mut fields = Vec::with_capacity(left.len());
        let mut shift = 0u32;
        for (l, r) in left.iter().zip(right) {
            let Some((lo, hi)) = int_range(&[l, r]) else {
                return KeyCodec { plan: Plan::Bytes };
            };
            let codes = (hi as i128 - lo as i128) as u128 + 1;
            let width = bits_for(codes);
            fields.push(PackedField::Int { min: lo, shift });
            shift += width;
            if shift > 64 {
                return KeyCodec { plan: Plan::Bytes };
            }
        }
        KeyCodec {
            plan: Plan::Packed {
                fields,
                width: shift,
            },
        }
    }

    /// Encode every row of `cols` (one table side) into flat buffers.
    /// `track_nulls` populates the per-row any-NULL vector — joins need
    /// it (NULL keys never match); grouping does not (NULLs group via
    /// their reserved code), so it skips the extra scan.
    pub fn encode(&self, cols: &[&Column], n: usize, track_nulls: bool) -> EncodedKeys {
        let nulls = if track_nulls && cols.iter().any(|c| c.validity.is_some()) {
            let mut v = vec![false; n];
            for c in cols {
                if let Some(val) = &c.validity {
                    for (slot, ok) in v.iter_mut().zip(val) {
                        *slot |= !ok;
                    }
                }
            }
            Some(v)
        } else {
            None
        };
        match &self.plan {
            Plan::Packed { fields, .. } => {
                let mut keys = vec![0u64; n];
                for (c, f) in cols.iter().zip(fields) {
                    match (f, &c.data) {
                        (PackedField::Int { min, shift }, ColumnData::Int(v)) => {
                            match &c.validity {
                                None => {
                                    for (k, &x) in keys.iter_mut().zip(v) {
                                        *k |= ((x.wrapping_sub(*min) as u64) + 1) << shift;
                                    }
                                }
                                Some(val) => {
                                    for ((k, &x), &ok) in keys.iter_mut().zip(v).zip(val) {
                                        if ok {
                                            *k |= ((x.wrapping_sub(*min) as u64) + 1) << shift;
                                        }
                                    }
                                }
                            }
                        }
                        (PackedField::Dict { shift }, ColumnData::Str { codes, .. }) => {
                            match &c.validity {
                                None => {
                                    for (k, &code) in keys.iter_mut().zip(codes) {
                                        *k |= (code as u64 + 1) << shift;
                                    }
                                }
                                Some(val) => {
                                    for ((k, &code), &ok) in keys.iter_mut().zip(codes).zip(val) {
                                        if ok {
                                            *k |= (code as u64 + 1) << shift;
                                        }
                                    }
                                }
                            }
                        }
                        _ => unreachable!("codec plan does not match column layout"),
                    }
                }
                EncodedKeys::U64 { keys, nulls }
            }
            Plan::Bytes => {
                // Rough per-row size: 1 tag + 8 payload bytes per column.
                let mut buf = Vec::with_capacity(n * cols.len() * 9);
                let mut offsets = Vec::with_capacity(n + 1);
                offsets.push(0);
                for i in 0..n {
                    for c in cols {
                        if !c.is_valid(i) {
                            buf.push(0u8);
                            continue;
                        }
                        match &c.data {
                            ColumnData::Int(v) => {
                                buf.push(1u8);
                                buf.extend_from_slice(&v[i].to_le_bytes());
                            }
                            ColumnData::Float(v) => {
                                buf.push(2u8);
                                buf.extend_from_slice(&canonical_f64_bits(v[i]).to_le_bytes());
                            }
                            ColumnData::Str { dict, codes } => {
                                let s = dict[codes[i] as usize].as_bytes();
                                buf.push(3u8);
                                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                                buf.extend_from_slice(s);
                            }
                        }
                    }
                    offsets.push(buf.len());
                }
                EncodedKeys::Bytes {
                    buf,
                    offsets,
                    nulls,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Open-addressing key table (shared by grouping and join build/probe)
// ---------------------------------------------------------------------------

/// Linear-probing table mapping hashed keys to dense ids. Buckets store
/// `id + 1` (`0` = empty); key storage and equality live with the caller.
struct KeyTable {
    buckets: Vec<u32>,
    hashes: Vec<u64>,
    mask: usize,
}

impl KeyTable {
    fn with_capacity(n: usize) -> KeyTable {
        let cap = (n * 2).next_power_of_two().max(16);
        KeyTable {
            buckets: vec![0; cap],
            hashes: vec![0; cap],
            mask: cap - 1,
        }
    }

    /// Find the id for `hash`, using `eq(candidate_id)` to confirm, or
    /// insert `next_id`. Returns `(id, inserted)`.
    #[inline]
    fn insert_or_get(
        &mut self,
        hash: u64,
        next_id: u32,
        mut eq: impl FnMut(u32) -> bool,
    ) -> (u32, bool) {
        let mut pos = (hash as usize) & self.mask;
        loop {
            let b = self.buckets[pos];
            if b == 0 {
                self.buckets[pos] = next_id + 1;
                self.hashes[pos] = hash;
                return (next_id, true);
            }
            if self.hashes[pos] == hash && eq(b - 1) {
                return (b - 1, false);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Read-only lookup.
    #[inline]
    fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut pos = (hash as usize) & self.mask;
        loop {
            let b = self.buckets[pos];
            if b == 0 {
                return None;
            }
            if self.hashes[pos] == hash && eq(b - 1) {
                return Some(b - 1);
            }
            pos = (pos + 1) & self.mask;
        }
    }
}

// ---------------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------------

/// Dense group assignment for a table grouped by `cols`.
pub struct Grouping {
    /// Group id per row (first-occurrence order, same as the previous
    /// `HashMap<Vec<HKey>, u32>` implementation).
    pub gids: Vec<u32>,
    /// Number of distinct groups.
    pub num_groups: usize,
    /// Representative (first) row per group.
    pub reps: Vec<u32>,
    /// Rows per group (free by-product of the grouping pass; lets
    /// `COUNT(*)` skip its accumulation pass entirely).
    pub sizes: Vec<u32>,
}

/// Widest packed key that uses a direct-address table (2^16 slots, 256 KiB)
/// instead of a hash table.
const DIRECT_MAX_BITS: u32 = 16;

/// Assign dense group ids to rows keyed by `cols`. NULL key components
/// group together (SQL `GROUP BY` semantics).
pub fn group_rows(cols: &[&Column], n: usize) -> Grouping {
    let codec = KeyCodec::for_grouping(cols);
    // Perfect-hash fast path: narrow packed keys index a direct-address
    // table — one array access per row, no hashing or probing. Gated on
    // the row count so tiny inputs don't pay for zeroing a slot array
    // much larger than themselves.
    if let Plan::Packed { width, .. } = &codec.plan {
        if *width <= DIRECT_MAX_BITS && (1usize << *width) <= n.saturating_mul(4).max(1024) {
            let keys = codec.encode(cols, n, false);
            let EncodedKeys::U64 { keys, .. } = &keys else {
                unreachable!("packed plan encodes to u64 keys")
            };
            let mut slots = vec![0u32; 1usize << width]; // gid + 1; 0 = empty
            let mut gids = Vec::with_capacity(n);
            let mut reps: Vec<u32> = Vec::new();
            let mut sizes: Vec<u32> = Vec::new();
            for (i, &k) in keys.iter().enumerate() {
                let slot = &mut slots[k as usize];
                if *slot == 0 {
                    *slot = reps.len() as u32 + 1;
                    reps.push(i as u32);
                    sizes.push(0);
                }
                let gid = *slot - 1;
                sizes[gid as usize] += 1;
                gids.push(gid);
            }
            return Grouping {
                gids,
                num_groups: reps.len(),
                reps,
                sizes,
            };
        }
    }
    let keys = codec.encode(cols, n, false);
    let mut table = KeyTable::with_capacity(n);
    let mut gids = Vec::with_capacity(n);
    let mut reps: Vec<u32> = Vec::new();
    let mut sizes: Vec<u32> = Vec::new();
    for i in 0..n {
        let h = keys.hash_row(i);
        let (gid, inserted) = table.insert_or_get(h, reps.len() as u32, |cand| {
            keys.rows_equal(reps[cand as usize] as usize, &keys, i)
        });
        if inserted {
            reps.push(i as u32);
            sizes.push(0);
        }
        sizes[gid as usize] += 1;
        gids.push(gid);
    }
    Grouping {
        gids,
        num_groups: reps.len(),
        reps,
        sizes,
    }
}

// ---------------------------------------------------------------------------
// Join index
// ---------------------------------------------------------------------------

/// Hash join index: built over the right side's key columns, probed with
/// left rows. Rows with NULL key components never match (on either side).
/// Hash join index: CSR row lists per encoded right-side key.
pub struct JoinIndex {
    table: KeyTable,
    right_keys: EncodedKeys,
    left_keys: EncodedKeys,
    /// Representative right row per key id.
    reps: Vec<u32>,
    /// CSR layout: right rows of key id `g` are `rows[starts[g]..starts[g+1]]`.
    starts: Vec<u32>,
    rows: Vec<u32>,
}

impl JoinIndex {
    /// Build a hash index over the right side's encoded keys (the codec is
    /// chosen jointly so both sides encode identically).
    pub fn build(left_cols: &[&Column], right_cols: &[&Column], ln: usize, rn: usize) -> JoinIndex {
        let codec = KeyCodec::for_join(left_cols, right_cols);
        let right_keys = codec.encode(right_cols, rn, true);
        let left_keys = codec.encode(left_cols, ln, true);
        let mut table = KeyTable::with_capacity(rn);
        let mut reps: Vec<u32> = Vec::new();
        let mut rgids: Vec<(u32, u32)> = Vec::with_capacity(rn); // (row, key id)
        for i in 0..rn {
            if right_keys.is_null_row(i) {
                continue; // NULL keys never match
            }
            let h = right_keys.hash_row(i);
            let (gid, inserted) = table.insert_or_get(h, reps.len() as u32, |cand| {
                right_keys.rows_equal(reps[cand as usize] as usize, &right_keys, i)
            });
            if inserted {
                reps.push(i as u32);
            }
            rgids.push((i as u32, gid));
        }
        // Bucket right rows per key id (CSR; preserves row order per key,
        // matching the previous Vec-push build).
        let g = reps.len();
        let mut counts = vec![0u32; g + 1];
        for &(_, gid) in &rgids {
            counts[gid as usize + 1] += 1;
        }
        for i in 1..=g {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut rows = vec![0u32; rgids.len()];
        let mut cursor = counts;
        for &(row, gid) in &rgids {
            rows[cursor[gid as usize] as usize] = row;
            cursor[gid as usize] += 1;
        }
        JoinIndex {
            table,
            right_keys,
            left_keys,
            reps,
            starts,
            rows,
        }
    }

    /// Matching right rows for left row `i` (`None` — no match or NULL key).
    #[inline]
    pub fn probe(&self, i: usize) -> Option<&[u32]> {
        if self.left_keys.is_null_row(i) {
            return None;
        }
        let h = self.left_keys.hash_row(i);
        let gid = self.table.get(h, |cand| {
            self.right_keys
                .rows_equal(self.reps[cand as usize] as usize, &self.left_keys, i)
        })?;
        let (s, e) = (
            self.starts[gid as usize] as usize,
            self.starts[gid as usize + 1] as usize,
        );
        Some(&self.rows[s..e])
    }
}

// ---------------------------------------------------------------------------
// Sort keys + top-k selection
// ---------------------------------------------------------------------------

enum SortField {
    /// Numeric values (ints widened to f64, matching `Datum::sql_cmp`).
    Num(Vec<f64>),
    /// Per-row dictionary ranks: rank order == lexicographic string order.
    StrRank(Vec<u32>),
}

struct SortCol {
    field: SortField,
    valid: Option<Vec<bool>>,
    desc: bool,
}

/// Comparable sort keys extracted once per `ORDER BY` (no `Datum`
/// materialization or `String` clone per comparison).
pub struct SortKeys {
    cols: Vec<SortCol>,
}

impl SortKeys {
    /// Consumes the sort columns so the Float fast path moves its data
    /// instead of copying (callers build them solely for this).
    pub fn new(cols: Vec<Column>, descs: &[bool]) -> SortKeys {
        let cols = cols
            .into_iter()
            .zip(descs)
            .map(|(c, &desc)| {
                let valid = c.validity;
                let field = match c.data {
                    ColumnData::Int(v) => SortField::Num(v.iter().map(|&x| x as f64).collect()),
                    ColumnData::Float(v) => SortField::Num(v),
                    ColumnData::Str { dict, codes } => {
                        // Rank dictionary entries; equal strings (duplicate
                        // dict entries) share a rank.
                        let mut order: Vec<u32> = (0..dict.len() as u32).collect();
                        order.sort_by(|&a, &b| dict[a as usize].cmp(&dict[b as usize]));
                        let mut rank_of_code = vec![0u32; dict.len()];
                        let mut rank = 0u32;
                        for (i, &code) in order.iter().enumerate() {
                            if i > 0 && dict[code as usize] != dict[order[i - 1] as usize] {
                                rank += 1;
                            }
                            rank_of_code[code as usize] = rank;
                        }
                        SortField::StrRank(
                            codes.iter().map(|&c| rank_of_code[c as usize]).collect(),
                        )
                    }
                };
                SortCol { field, valid, desc }
            })
            .collect();
        SortKeys { cols }
    }

    /// SQL ordering of rows `a` and `b`: NULLs last regardless of
    /// direction, NaNs compare equal (as `Datum::sql_cmp` does).
    #[inline]
    pub fn cmp(&self, a: usize, b: usize) -> Ordering {
        for col in &self.cols {
            let (an, bn) = match &col.valid {
                Some(v) => (!v[a], !v[b]),
                None => (false, false),
            };
            let ord = match (an, bn) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    let o = match &col.field {
                        SortField::Num(v) => v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal),
                        SortField::StrRank(r) => r[a].cmp(&r[b]),
                    };
                    if col.desc {
                        o.reverse()
                    } else {
                        o
                    }
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Total order used for selection: key order, ties broken by original
    /// row index (== the prefix of a stable sort).
    #[inline]
    fn cmp_total(&self, a: usize, b: usize) -> Ordering {
        self.cmp(a, b).then_with(|| a.cmp(&b))
    }

    /// Stable full-sort permutation.
    pub fn sort_permutation(&self, n: usize) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by(|&a, &b| self.cmp(a as usize, b as usize));
        perm
    }

    /// The `k` first rows of the stable sort, without sorting all `n` rows:
    /// a bounded insertion set gives O(n log k) comparisons + O(k) moves
    /// per improving row (`k` is 1 for every split query sqlgen emits).
    pub fn top_k(&self, n: usize, k: usize) -> Vec<u32> {
        let mut winners: Vec<u32> = Vec::with_capacity(k.min(n));
        if k == 0 {
            return winners;
        }
        for i in 0..n {
            if winners.len() == k {
                let worst = *winners.last().expect("non-empty") as usize;
                if self.cmp_total(i, worst) != Ordering::Less {
                    continue;
                }
                winners.pop();
            }
            let pos = winners.partition_point(|&w| self.cmp_total(w as usize, i) == Ordering::Less);
            winners.insert(pos, i as u32);
        }
        winners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    #[test]
    fn grouping_matches_first_occurrence_order() {
        let k1 = Column::int(vec![2, 1, 2, 3, 1]);
        let g = group_rows(&[&k1], 5);
        assert_eq!(g.gids, vec![0, 1, 0, 2, 1]);
        assert_eq!(g.num_groups, 3);
        assert_eq!(g.reps, vec![0, 1, 3]);
    }

    #[test]
    fn grouping_nulls_group_together() {
        let c = Column::from_datums(&[Datum::Int(1), Datum::Null, Datum::Int(1), Datum::Null]);
        let g = group_rows(&[&c], 4);
        assert_eq!(g.gids, vec![0, 1, 0, 1]);
    }

    #[test]
    fn grouping_multi_column_mixed_types() {
        let a = Column::int(vec![1, 1, 2, 1]);
        let b = Column::str(vec!["x".into(), "y".into(), "x".into(), "x".into()]);
        let g = group_rows(&[&a, &b], 4);
        assert_eq!(g.gids, vec![0, 1, 2, 0]);
        assert_eq!(g.num_groups, 3);
    }

    #[test]
    fn grouping_float_negative_zero_canonicalized() {
        let c = Column::float(vec![0.0, -0.0, 1.0]);
        let g = group_rows(&[&c], 3);
        assert_eq!(g.gids[0], g.gids[1]);
        assert_ne!(g.gids[0], g.gids[2]);
    }

    #[test]
    fn grouping_wide_int_range_falls_back_to_bytes() {
        let c = Column::int(vec![i64::MIN, i64::MAX, 0, i64::MIN]);
        let g = group_rows(&[&c], 4);
        assert_eq!(g.gids, vec![0, 1, 2, 0]);
    }

    #[test]
    fn join_index_basic_and_null_keys() {
        let l = Column::from_datums(&[Datum::Int(1), Datum::Null, Datum::Int(3)]);
        let r = Column::from_datums(&[Datum::Int(3), Datum::Int(1), Datum::Int(1), Datum::Null]);
        let idx = JoinIndex::build(&[&l], &[&r], 3, 4);
        assert_eq!(idx.probe(0), Some(&[1u32, 2][..]));
        assert_eq!(idx.probe(1), None, "NULL left key matches nothing");
        assert_eq!(idx.probe(2), Some(&[0u32][..]));
    }

    #[test]
    fn join_index_cross_type_never_matches() {
        // Int 5 and Float 5.0 are distinct HKey variants in the old
        // implementation; the byte encoding's type tags preserve that.
        let l = Column::int(vec![5]);
        let r = Column::float(vec![5.0]);
        let idx = JoinIndex::build(&[&l], &[&r], 1, 1);
        assert_eq!(idx.probe(0), None);
    }

    #[test]
    fn join_index_string_keys_across_dicts() {
        let l = Column::str(vec!["b".into(), "a".into()]);
        let r = Column::str(vec!["a".into(), "b".into(), "b".into()]);
        let idx = JoinIndex::build(&[&l], &[&r], 2, 3);
        assert_eq!(idx.probe(0), Some(&[1u32, 2][..]));
        assert_eq!(idx.probe(1), Some(&[0u32][..]));
    }

    #[test]
    fn sort_keys_match_datum_sql_cmp() {
        let c = Column::from_datums(&[
            Datum::Float(2.0),
            Datum::Null,
            Datum::Float(-1.0),
            Datum::Float(2.0),
        ]);
        let keys = SortKeys::new(vec![c], &[false]);
        let perm = keys.sort_permutation(4);
        assert_eq!(perm, vec![2, 0, 3, 1], "NULL last, stable on ties");
        // DESC still sorts NULL last.
        let c2 = Column::from_datums(&[Datum::Float(2.0), Datum::Null, Datum::Float(-1.0)]);
        let keys = SortKeys::new(vec![c2], &[true]);
        assert_eq!(keys.sort_permutation(3), vec![0, 2, 1]);
    }

    #[test]
    fn top_k_equals_sort_prefix() {
        let c = Column::float(vec![5.0, 1.0, 3.0, 1.0, 4.0, 2.0]);
        let keys = SortKeys::new(vec![c], &[false]);
        let full = keys.sort_permutation(6);
        for k in 0..=6 {
            assert_eq!(keys.top_k(6, k), full[..k], "k = {k}");
        }
    }

    #[test]
    fn top_k_string_ranks() {
        let c = Column::str(vec!["pear".into(), "apple".into(), "fig".into()]);
        let keys = SortKeys::new(vec![c], &[false]);
        assert_eq!(keys.top_k(3, 2), vec![1, 2]);
    }
}
