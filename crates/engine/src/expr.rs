//! Expression evaluation: vectorized (columnar) and tuple-at-a-time (row
//! mode, used to model row-oriented engines like `X-row` in the paper).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use joinboost_sql::ast::{BinaryOp, Expr, Query, UnaryOp, Value};

use crate::column::{Column, ColumnData, HKey};
use crate::datum::Datum;
use crate::error::{EngineError, Result};
use crate::table::Table;

/// Something that can execute a subquery (implemented by the executor;
/// needed for `IN (SELECT ..)` predicates).
pub trait SubqueryRunner {
    /// Execute a subquery to a materialized table.
    fn run_subquery(&self, q: &Query) -> Result<Table>;
}

/// Evaluation context: the subquery runner plus per-statement caches so
/// that `IN (SELECT ..)` subqueries and window columns are computed once.
pub struct EvalContext<'a> {
    /// Executes `IN (SELECT ..)` subqueries.
    pub runner: &'a dyn SubqueryRunner,
    subquery_sets: RefCell<HashMap<usize, Rc<HashSet<HKey>>>>,
    window_cols: RefCell<HashMap<usize, Rc<Column>>>,
}

impl<'a> EvalContext<'a> {
    /// A fresh context with empty subquery/window caches.
    pub fn new(runner: &'a dyn SubqueryRunner) -> Self {
        EvalContext {
            runner,
            subquery_sets: RefCell::new(HashMap::new()),
            window_cols: RefCell::new(HashMap::new()),
        }
    }

    fn subquery_set(&self, q: &Query) -> Result<Rc<HashSet<HKey>>> {
        let key = q as *const Query as usize;
        if let Some(s) = self.subquery_sets.borrow().get(&key) {
            return Ok(Rc::clone(s));
        }
        let t = self.runner.run_subquery(q)?;
        if t.num_columns() != 1 {
            return Err(EngineError::Other(
                "IN subquery must return exactly one column".into(),
            ));
        }
        let col = &t.columns[0];
        let mut set = HashSet::with_capacity(col.len());
        for i in 0..col.len() {
            if col.is_valid(i) {
                set.insert(col.hkey(i));
            }
        }
        let rc = Rc::new(set);
        self.subquery_sets.borrow_mut().insert(key, Rc::clone(&rc));
        Ok(rc)
    }

    fn window_column(&self, expr: &Expr, table: &Table) -> Result<Rc<Column>> {
        let key = expr as *const Expr as usize;
        if let Some(c) = self.window_cols.borrow().get(&key) {
            return Ok(Rc::clone(c));
        }
        let Expr::WindowSum { arg, order_by } = expr else {
            return Err(EngineError::Other("not a window expression".into()));
        };
        let vals = eval(arg, table, self)?.to_f64_vec()?;
        let keys = eval(order_by, table, self)?;
        let n = vals.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by(|&a, &b| keys.get(a as usize).sql_cmp(&keys.get(b as usize)));
        let mut out = vec![0.0f64; n];
        let mut acc = 0.0;
        for &i in &perm {
            let v = vals[i as usize];
            if !v.is_nan() {
                acc += v;
            }
            out[i as usize] = acc;
        }
        let rc = Rc::new(Column::float(out));
        self.window_cols.borrow_mut().insert(key, Rc::clone(&rc));
        Ok(rc)
    }
}

/// Vectorized evaluation of `expr` over all rows of `table`.
pub fn eval(expr: &Expr, table: &Table, ctx: &EvalContext) -> Result<Column> {
    let n = table.num_rows();
    match expr {
        Expr::Column { table: q, name } => Ok(table.column(q.as_deref(), name)?.clone()),
        Expr::Literal(v) => Ok(broadcast_literal(v, n)),
        Expr::Binary { op, left, right } => {
            let l = eval(left, table, ctx)?;
            let r = eval(right, table, ctx)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let c = eval(expr, table, ctx)?;
            eval_unary(*op, &c)
        }
        Expr::Func { name, args } => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| eval(a, table, ctx))
                .collect::<Result<_>>()?;
            eval_scalar_func(name, &cols, n)
        }
        Expr::Wildcard => Err(EngineError::Other(
            "* is only valid in COUNT(*) or as a select item".into(),
        )),
        Expr::WindowSum { .. } => Ok((*ctx.window_column(expr, table)?).clone()),
        Expr::Case { whens, else_expr } => {
            let mut out: Vec<Datum> = match else_expr {
                Some(e) => {
                    let c = eval(e, table, ctx)?;
                    (0..n).map(|i| c.get(i)).collect()
                }
                None => vec![Datum::Null; n],
            };
            let mut decided = vec![false; n];
            for (cond, then) in whens {
                let cmask = eval(cond, table, ctx)?;
                let tvals = eval(then, table, ctx)?;
                for i in 0..n {
                    if !decided[i] && cmask.get(i).is_truthy() {
                        out[i] = tvals.get(i);
                        decided[i] = true;
                    }
                }
            }
            Ok(Column::from_datums(&out))
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let set = ctx.subquery_set(query)?;
            let c = eval(expr, table, ctx)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if !c.is_valid(i) {
                    out.push(0);
                    continue;
                }
                let hit = set.contains(&c.hkey(i));
                out.push((hit != *negated) as i64);
            }
            Ok(Column::int(out))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let c = eval(expr, table, ctx)?;
            let mut set = HashSet::with_capacity(list.len());
            for item in list {
                let lc = eval(item, table, ctx)?;
                if lc.len() != n && lc.len() != 1 {
                    return Err(EngineError::Other("IN list item arity".into()));
                }
                if lc.is_valid(0) {
                    set.insert(lc.hkey(0));
                }
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if !c.is_valid(i) {
                    out.push(0);
                    continue;
                }
                out.push((set.contains(&c.hkey(i)) != *negated) as i64);
            }
            Ok(Column::int(out))
        }
        Expr::IsNull { expr, negated } => {
            let c = eval(expr, table, ctx)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push((c.is_valid(i) == *negated) as i64);
            }
            Ok(Column::int(out))
        }
    }
}

fn broadcast_literal(v: &Value, n: usize) -> Column {
    match v {
        Value::Int(x) => Column::int(vec![*x; n]),
        Value::Float(x) => Column::float(vec![*x; n]),
        Value::Str(s) => Column::str(vec![s.clone(); n]),
        Value::Null => Column {
            data: ColumnData::Float(vec![0.0; n]),
            validity: Some(vec![false; n]),
        },
    }
}

fn eval_unary(op: UnaryOp, c: &Column) -> Result<Column> {
    let n = c.len();
    match op {
        UnaryOp::Neg => match (&c.data, &c.validity) {
            (ColumnData::Int(v), None) => Ok(Column::int(v.iter().map(|x| -x).collect())),
            (ColumnData::Float(v), None) => Ok(Column::float(v.iter().map(|x| -x).collect())),
            _ => {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(match c.get(i) {
                        Datum::Int(x) => Datum::Int(-x),
                        Datum::Float(x) => Datum::Float(-x),
                        Datum::Null => Datum::Null,
                        Datum::Str(_) => {
                            return Err(EngineError::TypeMismatch("negate string".into()))
                        }
                    });
                }
                Ok(Column::from_datums(&out))
            }
        },
        UnaryOp::Not => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push((!c.get(i).is_truthy()) as i64);
            }
            Ok(Column::int(out))
        }
    }
}

fn eval_binary(op: BinaryOp, l: &Column, r: &Column) -> Result<Column> {
    use BinaryOp::*;
    let n = l.len().max(r.len());
    // Fast path: dense numeric arithmetic over f64.
    if matches!(op, Add | Sub | Mul | Div) {
        // Integer-preserving path for Int ⊕ Int (except Div).
        if let (Some(a), Some(b)) = (l.as_i64_slice(), r.as_i64_slice()) {
            if op != Div {
                let out: Vec<i64> = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        _ => unreachable!(),
                    })
                    .collect();
                return Ok(Column::int(out));
            }
        }
        if l.validity.is_none()
            && r.validity.is_none()
            && !matches!(l.data, ColumnData::Str { .. })
            && !matches!(r.data, ColumnData::Str { .. })
            && op != Div
        {
            // Operate on the typed slices directly — no intermediate
            // to_f64_vec materialization of either operand.
            let apply = |x: f64, y: f64| match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                _ => unreachable!(),
            };
            let out: Vec<f64> = match (&l.data, &r.data) {
                (ColumnData::Float(a), ColumnData::Float(b)) => {
                    a.iter().zip(b).map(|(&x, &y)| apply(x, y)).collect()
                }
                (ColumnData::Float(a), ColumnData::Int(b)) => {
                    a.iter().zip(b).map(|(&x, &y)| apply(x, y as f64)).collect()
                }
                (ColumnData::Int(a), ColumnData::Float(b)) => {
                    a.iter().zip(b).map(|(&x, &y)| apply(x as f64, y)).collect()
                }
                // Int/Int took the integer-preserving path above; strings
                // are excluded by the guard.
                _ => unreachable!("int/int and string operands handled earlier"),
            };
            return Ok(Column::float(out));
        }
        // General arithmetic with NULL propagation; division by zero → NULL.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = l.f64_at(i.min(l.len() - 1));
            let b = r.f64_at(i.min(r.len() - 1));
            out.push(match (a, b) {
                (Some(x), Some(y)) => match op {
                    Add => Datum::Float(x + y),
                    Sub => Datum::Float(x - y),
                    Mul => Datum::Float(x * y),
                    Div => {
                        if y == 0.0 {
                            Datum::Null
                        } else {
                            Datum::Float(x / y)
                        }
                    }
                    _ => unreachable!(),
                },
                _ => Datum::Null,
            });
        }
        return Ok(Column::from_datums(&out));
    }
    if matches!(op, And | Or) {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = l.get(i).is_truthy();
            let b = r.get(i).is_truthy();
            out.push(match op {
                And => (a && b) as i64,
                Or => (a || b) as i64,
                _ => unreachable!(),
            });
        }
        return Ok(Column::int(out));
    }
    // Comparisons.
    let mut out = Vec::with_capacity(n);
    let str_l = matches!(l.data, ColumnData::Str { .. });
    let str_r = matches!(r.data, ColumnData::Str { .. });
    for i in 0..n {
        let li = i.min(l.len() - 1);
        let ri = i.min(r.len() - 1);
        if !l.is_valid(li) || !r.is_valid(ri) {
            out.push(Datum::Null);
            continue;
        }
        let ord = if str_l && str_r {
            l.get(li).as_str().unwrap().cmp(r.get(ri).as_str().unwrap())
        } else if str_l || str_r {
            return Err(EngineError::TypeMismatch(
                "cannot compare string with number".into(),
            ));
        } else {
            let x = l.f64_at(li).expect("valid numeric");
            let y = r.f64_at(ri).expect("valid numeric");
            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
        };
        use std::cmp::Ordering::*;
        let b = match op {
            Eq => ord == Equal,
            Neq => ord != Equal,
            Lt => ord == Less,
            LtEq => ord != Greater,
            Gt => ord == Greater,
            GtEq => ord != Less,
            _ => unreachable!(),
        };
        out.push(Datum::Int(b as i64));
    }
    Ok(Column::from_datums(&out))
}

fn eval_scalar_func(name: &str, args: &[Column], n: usize) -> Result<Column> {
    let unary_math = |f: fn(f64) -> f64| -> Result<Column> {
        let c = &args[0];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(match c.f64_at(i) {
                Some(x) => {
                    let y = f(x);
                    if y.is_finite() {
                        Datum::Float(y)
                    } else {
                        Datum::Null
                    }
                }
                None => Datum::Null,
            });
        }
        Ok(Column::from_datums(&out))
    };
    match name {
        "ABS" => unary_math(f64::abs),
        "LOG" | "LN" => unary_math(f64::ln),
        "EXP" => unary_math(f64::exp),
        "SQRT" => unary_math(f64::sqrt),
        "FLOOR" => unary_math(f64::floor),
        "CEIL" => unary_math(f64::ceil),
        "SIGN" => unary_math(f64::signum),
        "POW" | "POWER" => {
            if args.len() != 2 {
                return Err(EngineError::Other("POW takes 2 arguments".into()));
            }
            let (a, b) = (&args[0], &args[1]);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match (a.f64_at(i), b.f64_at(i)) {
                    (Some(x), Some(y)) => Datum::Float(x.powf(y)),
                    _ => Datum::Null,
                });
            }
            Ok(Column::from_datums(&out))
        }
        "LEAST" | "GREATEST" => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut acc: Option<f64> = None;
                for c in args {
                    if let Some(x) = c.f64_at(i) {
                        acc = Some(match acc {
                            None => x,
                            Some(a) => {
                                if name == "LEAST" {
                                    a.min(x)
                                } else {
                                    a.max(x)
                                }
                            }
                        });
                    }
                }
                out.push(acc.map_or(Datum::Null, Datum::Float));
            }
            Ok(Column::from_datums(&out))
        }
        "COALESCE" => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut v = Datum::Null;
                for c in args {
                    if c.is_valid(i.min(c.len().saturating_sub(1))) {
                        v = c.get(i.min(c.len() - 1));
                        break;
                    }
                }
                out.push(v);
            }
            Ok(Column::from_datums(&out))
        }
        "SUM" | "COUNT" | "AVG" | "MIN" | "MAX" => Err(EngineError::Other(format!(
            "aggregate {name} in scalar context (missing GROUP BY rewrite?)"
        ))),
        other => Err(EngineError::Other(format!("unknown function {other}"))),
    }
}

/// Tuple-at-a-time evaluation (row-oriented engine mode). Semantically
/// identical to [`eval`] but dispatches per row through [`Datum`] values,
/// which is what makes row engines slower on analytical scans.
pub fn eval_row(expr: &Expr, table: &Table, row: usize, ctx: &EvalContext) -> Result<Datum> {
    match expr {
        Expr::Column { table: q, name } => Ok(table.column(q.as_deref(), name)?.get(row)),
        Expr::Literal(v) => Ok(match v {
            Value::Int(x) => Datum::Int(*x),
            Value::Float(x) => Datum::Float(*x),
            Value::Str(s) => Datum::Str(s.clone()),
            Value::Null => Datum::Null,
        }),
        Expr::Binary { op, left, right } => {
            let l = eval_row(left, table, row, ctx)?;
            let r = eval_row(right, table, row, ctx)?;
            datum_binary(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval_row(expr, table, row, ctx)?;
            match op {
                UnaryOp::Neg => match v {
                    Datum::Int(x) => Ok(Datum::Int(-x)),
                    Datum::Float(x) => Ok(Datum::Float(-x)),
                    Datum::Null => Ok(Datum::Null),
                    Datum::Str(_) => Err(EngineError::TypeMismatch("negate string".into())),
                },
                UnaryOp::Not => Ok(Datum::Int((!v.is_truthy()) as i64)),
            }
        }
        Expr::Func { name, args } => {
            let vals: Vec<Datum> = args
                .iter()
                .map(|a| eval_row(a, table, row, ctx))
                .collect::<Result<_>>()?;
            let cols: Vec<Column> = vals
                .iter()
                .map(|v| Column::from_datums(std::slice::from_ref(v)))
                .collect();
            let c = eval_scalar_func(name, &cols, 1)?;
            Ok(c.get(0))
        }
        Expr::WindowSum { .. } => {
            let col = ctx.window_column(expr, table)?;
            Ok(col.get(row))
        }
        Expr::Case { whens, else_expr } => {
            for (cond, then) in whens {
                if eval_row(cond, table, row, ctx)?.is_truthy() {
                    return eval_row(then, table, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval_row(e, table, row, ctx),
                None => Ok(Datum::Null),
            }
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let set = ctx.subquery_set(query)?;
            let v = eval_row(expr, table, row, ctx)?;
            if v.is_null() {
                return Ok(Datum::Int(0));
            }
            let key = datum_hkey(&v);
            Ok(Datum::Int((set.contains(&key) != *negated) as i64))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_row(expr, table, row, ctx)?;
            if v.is_null() {
                return Ok(Datum::Int(0));
            }
            let mut hit = false;
            for item in list {
                let w = eval_row(item, table, row, ctx)?;
                if v.sql_cmp(&w) == std::cmp::Ordering::Equal && !w.is_null() {
                    hit = true;
                    break;
                }
            }
            Ok(Datum::Int((hit != *negated) as i64))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(expr, table, row, ctx)?;
            Ok(Datum::Int((v.is_null() != *negated) as i64))
        }
        Expr::Wildcard => Err(EngineError::Other("* in scalar context".into())),
    }
}

fn datum_hkey(d: &Datum) -> HKey {
    match d {
        Datum::Null => HKey::Null,
        Datum::Int(x) => HKey::Int(*x),
        Datum::Float(x) => HKey::Float(crate::column::canonical_f64_bits(*x)),
        Datum::Str(s) => HKey::Str(s.clone()),
    }
}

fn datum_binary(op: BinaryOp, l: &Datum, r: &Datum) -> Result<Datum> {
    use BinaryOp::*;
    match op {
        And => Ok(Datum::Int((l.is_truthy() && r.is_truthy()) as i64)),
        Or => Ok(Datum::Int((l.is_truthy() || r.is_truthy()) as i64)),
        Add | Sub | Mul | Div => {
            if let (Datum::Int(a), Datum::Int(b)) = (l, r) {
                if op != Div {
                    return Ok(Datum::Int(match op {
                        Add => a.wrapping_add(*b),
                        Sub => a.wrapping_sub(*b),
                        Mul => a.wrapping_mul(*b),
                        _ => unreachable!(),
                    }));
                }
            }
            match (l.as_f64(), r.as_f64()) {
                (Some(x), Some(y)) => Ok(match op {
                    Add => Datum::Float(x + y),
                    Sub => Datum::Float(x - y),
                    Mul => Datum::Float(x * y),
                    Div => {
                        if y == 0.0 {
                            Datum::Null
                        } else {
                            Datum::Float(x / y)
                        }
                    }
                    _ => unreachable!(),
                }),
                _ => Ok(Datum::Null),
            }
        }
        Eq | Neq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Datum::Null);
            }
            use std::cmp::Ordering::*;
            let ord = match (l, r) {
                (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
                (Datum::Str(_), _) | (_, Datum::Str(_)) => {
                    return Err(EngineError::TypeMismatch(
                        "cannot compare string with number".into(),
                    ))
                }
                _ => l.sql_cmp(r),
            };
            let b = match op {
                Eq => ord == Equal,
                Neq => ord != Equal,
                Lt => ord == Less,
                LtEq => ord != Greater,
                Gt => ord == Greater,
                GtEq => ord != Less,
                _ => unreachable!(),
            };
            Ok(Datum::Int(b as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_sql::parse_expr;

    struct NoSubqueries;
    impl SubqueryRunner for NoSubqueries {
        fn run_subquery(&self, _q: &Query) -> Result<Table> {
            Err(EngineError::Other("no subqueries in this test".into()))
        }
    }

    fn t1() -> Table {
        Table::from_columns(vec![
            ("a", Column::int(vec![1, 2, 3, 4])),
            ("b", Column::float(vec![0.5, 1.5, 2.5, 3.5])),
        ])
    }

    fn eval_str(sql: &str, table: &Table) -> Column {
        let e = parse_expr(sql).unwrap();
        let runner = NoSubqueries;
        let ctx = EvalContext::new(&runner);
        eval(&e, table, &ctx).unwrap()
    }

    #[test]
    fn arithmetic_int_preserving() {
        let c = eval_str("a * 2 + 1", &t1());
        assert_eq!(c.as_i64_slice().unwrap(), &[3, 5, 7, 9]);
    }

    #[test]
    fn division_is_float_and_zero_is_null() {
        let c = eval_str("a / 2", &t1());
        assert_eq!(c.get(0), Datum::Float(0.5));
        let c = eval_str("a / 0", &t1());
        assert_eq!(c.get(0), Datum::Null);
    }

    #[test]
    fn comparisons_and_logic() {
        let c = eval_str("a > 2 AND b < 3.0", &t1());
        assert_eq!(c.as_i64_slice().unwrap(), &[0, 0, 1, 0]);
        let c = eval_str("NOT a = 1", &t1());
        assert_eq!(c.get(0), Datum::Int(0));
    }

    #[test]
    fn case_expression() {
        let c = eval_str("CASE WHEN a <= 2 THEN 10 ELSE 20 END", &t1());
        assert_eq!(c.as_i64_slice().unwrap(), &[10, 10, 20, 20]);
    }

    #[test]
    fn in_list() {
        let c = eval_str("a IN (1, 3)", &t1());
        assert_eq!(c.as_i64_slice().unwrap(), &[1, 0, 1, 0]);
        let c = eval_str("a NOT IN (1, 3)", &t1());
        assert_eq!(c.as_i64_slice().unwrap(), &[0, 1, 0, 1]);
    }

    #[test]
    fn window_prefix_sum_respects_order() {
        // Table deliberately out of key order.
        let t = Table::from_columns(vec![
            ("k", Column::int(vec![3, 1, 2])),
            ("v", Column::float(vec![30.0, 10.0, 20.0])),
        ]);
        let c = eval_str("SUM(v) OVER (ORDER BY k)", &t);
        // Sorted by k: 10, 30, 60 → scattered back to original positions.
        assert_eq!(c.get(0), Datum::Float(60.0));
        assert_eq!(c.get(1), Datum::Float(10.0));
        assert_eq!(c.get(2), Datum::Float(30.0));
    }

    #[test]
    fn scalar_functions() {
        let c = eval_str("ABS(0 - b)", &t1());
        assert_eq!(c.get(0), Datum::Float(0.5));
        let c = eval_str("LOG(EXP(1.0))", &t1());
        let v = c.f64_at(0).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        let c = eval_str("GREATEST(a, 2)", &t1());
        assert_eq!(c.get(0), Datum::Float(2.0));
        let c = eval_str("LOG(0.0)", &t1());
        assert_eq!(c.get(0), Datum::Null, "log(0) = -inf becomes NULL");
    }

    #[test]
    fn row_mode_matches_vectorized() {
        let t = t1();
        let exprs = [
            "a * 2 + 1",
            "a / 2",
            "CASE WHEN a <= 2 THEN 10 ELSE 20 END",
            "a IN (1, 3)",
            "b IS NULL",
            "-a + b",
        ];
        let runner = NoSubqueries;
        for sql in exprs {
            let e = parse_expr(sql).unwrap();
            let ctx = EvalContext::new(&runner);
            let vec_col = eval(&e, &t, &ctx).unwrap();
            for i in 0..t.num_rows() {
                let rv = eval_row(&e, &t, i, &ctx).unwrap();
                // Compare numerically (row mode may widen ints).
                match (vec_col.get(i), rv) {
                    (Datum::Null, Datum::Null) => {}
                    (a, b) => {
                        assert_eq!(a.as_f64(), b.as_f64(), "expr {sql} row {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn aggregate_in_scalar_context_errors() {
        let e = parse_expr("SUM(a)").unwrap();
        let runner = NoSubqueries;
        let ctx = EvalContext::new(&runner);
        assert!(eval(&e, &t1(), &ctx).is_err());
    }
}
