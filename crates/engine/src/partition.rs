//! Partitioned ("multi-node") execution.
//!
//! The paper's multi-node experiments (Figures 12–13) replicate dimension
//! tables across machines and hash-partition the fact table. This module
//! reproduces that setup with one [`Database`] per worker ("machine") run
//! on its own thread, plus an explicit shuffle stage: partial aggregates
//! are serialized to a byte stream, "moved", deserialized, and merged —
//! so adding machines first costs a shuffle before it buys parallelism.

use bytes::{Buf, BufMut, BytesMut};
use crossbeam::thread;

use crate::column::Column;
use crate::datum::Datum;
use crate::db::{Database, EngineConfig};
use crate::error::{EngineError, Result};
use crate::table::{ColumnMeta, Table};

/// A cluster of N single-node databases over a hash-partitioned fact table.
pub struct PartitionedDatabase {
    shards: Vec<Database>,
    /// Total bytes moved through the shuffle stage so far.
    pub shuffle_bytes: std::sync::atomic::AtomicU64,
}

impl PartitionedDatabase {
    /// Create `n` empty "machines" with the same engine configuration.
    pub fn new(n: usize, config: EngineConfig) -> PartitionedDatabase {
        assert!(n >= 1, "at least one machine");
        PartitionedDatabase {
            shards: (0..n).map(|_| Database::new(config.clone())).collect(),
            shuffle_bytes: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.shards.len()
    }

    /// One machine's database.
    pub fn shard(&self, i: usize) -> &Database {
        &self.shards[i]
    }

    /// Replicate a dimension table to every machine.
    pub fn replicate_table(&self, name: &str, table: &Table) -> Result<()> {
        for db in &self.shards {
            db.create_table(name, table.clone())?;
        }
        Ok(())
    }

    /// Hash-partition a fact table on `key` across the machines.
    pub fn partition_table(&self, name: &str, table: &Table, key: &str) -> Result<()> {
        let kidx = table.resolve(None, key)?;
        let n = self.shards.len();
        let kcol = &table.columns[kidx];
        let mut masks: Vec<Vec<bool>> = vec![vec![false; table.num_rows()]; n];
        #[allow(clippy::needless_range_loop)] // i indexes kcol and masks
        for i in 0..table.num_rows() {
            let h = match kcol.get(i) {
                Datum::Int(v) => v as u64,
                Datum::Float(v) => v.to_bits(),
                Datum::Str(s) => s.bytes().fold(1469598103934665603u64, |acc, b| {
                    (acc ^ b as u64).wrapping_mul(1099511628211)
                }),
                Datum::Null => 0,
            };
            masks[(h % n as u64) as usize][i] = true;
        }
        for (db, mask) in self.shards.iter().zip(&masks) {
            db.create_table(name, table.filter(mask))?;
        }
        Ok(())
    }

    /// Run a SQL statement on every machine (DDL, updates, drops).
    pub fn execute_all(&self, sql: &str) -> Result<()> {
        let results = thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|db| s.spawn(move |_| db.execute(sql).map(|_| ())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Run an aggregation query on every machine in parallel and merge the
    /// partial results: rows are concatenated after a serialize/deserialize
    /// shuffle, then re-aggregated by `group_cols`, summing `sum_cols`.
    ///
    /// This is exactly how distributed semi-ring aggregation composes: the
    /// `⊕` of the semi-ring is associative and commutative, so per-machine
    /// partial sums merge by another `⊕`.
    pub fn query_merged(&self, sql: &str, group_cols: &[&str], sum_cols: &[&str]) -> Result<Table> {
        let partials = thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|db| s.spawn(move |_| db.query(sql)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        let mut tables = Vec::with_capacity(partials.len());
        for p in partials {
            tables.push(p?);
        }
        // Shuffle: serialize every non-coordinator partial and read it back.
        if self.shards.len() > 1 {
            let mut moved = 0u64;
            for t in tables.iter_mut().skip(1) {
                let buf = serialize_table(t);
                moved += buf.len() as u64;
                *t = deserialize_table(buf)?;
            }
            self.shuffle_bytes
                .fetch_add(moved, std::sync::atomic::Ordering::Relaxed);
        }
        merge_partials(tables, group_cols, sum_cols)
    }
}

/// Merge partial aggregates: concatenate, group by `group_cols`, sum
/// `sum_cols`.
pub fn merge_partials(tables: Vec<Table>, group_cols: &[&str], sum_cols: &[&str]) -> Result<Table> {
    let first = tables
        .first()
        .ok_or_else(|| EngineError::Other("no partials".into()))?;
    let gidx: Vec<usize> = group_cols
        .iter()
        .map(|g| first.resolve(None, g))
        .collect::<Result<_>>()?;
    let sidx: Vec<usize> = sum_cols
        .iter()
        .map(|g| first.resolve(None, g))
        .collect::<Result<_>>()?;
    use std::collections::HashMap;
    let mut groups: HashMap<Vec<crate::column::HKey>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Datum>> = Vec::new();
    let mut sums: Vec<Vec<f64>> = Vec::new();
    for t in &tables {
        for i in 0..t.num_rows() {
            let key: Vec<crate::column::HKey> =
                gidx.iter().map(|&k| t.columns[k].hkey(i)).collect();
            let slot = *groups.entry(key).or_insert_with(|| {
                keys.push(gidx.iter().map(|&k| t.columns[k].get(i)).collect());
                sums.push(vec![0.0; sidx.len()]);
                keys.len() - 1
            });
            for (j, &sc) in sidx.iter().enumerate() {
                if let Some(v) = t.columns[sc].f64_at(i) {
                    sums[slot][j] += v;
                }
            }
        }
    }
    let mut out = Table::new();
    for (j, g) in group_cols.iter().enumerate() {
        let vals: Vec<Datum> = keys.iter().map(|k| k[j].clone()).collect();
        out.push_column(ColumnMeta::new(g.to_string()), Column::from_datums(&vals));
    }
    for (j, s) in sum_cols.iter().enumerate() {
        let vals: Vec<f64> = sums.iter().map(|v| v[j]).collect();
        out.push_column(ColumnMeta::new(s.to_string()), Column::float(vals));
    }
    Ok(out)
}

fn serialize_table(t: &Table) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(t.num_columns() as u32);
    buf.put_u64_le(t.num_rows() as u64);
    for (m, c) in t.meta.iter().zip(&t.columns) {
        buf.put_u32_le(m.name.len() as u32);
        buf.put_slice(m.name.as_bytes());
        for i in 0..c.len() {
            match c.get(i) {
                Datum::Int(v) => {
                    buf.put_u8(0);
                    buf.put_i64_le(v);
                }
                Datum::Float(v) => {
                    buf.put_u8(1);
                    buf.put_f64_le(v);
                }
                Datum::Str(s) => {
                    buf.put_u8(2);
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
                Datum::Null => buf.put_u8(3),
            }
        }
    }
    buf
}

fn deserialize_table(mut buf: BytesMut) -> Result<Table> {
    let ncols = buf.get_u32_le() as usize;
    let nrows = buf.get_u64_le() as usize;
    let mut out = Table::new();
    for _ in 0..ncols {
        let name_len = buf.get_u32_le() as usize;
        let name = String::from_utf8(buf.split_to(name_len).to_vec())
            .map_err(|e| EngineError::Other(format!("bad shuffle frame: {e}")))?;
        let mut vals = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            match buf.get_u8() {
                0 => vals.push(Datum::Int(buf.get_i64_le())),
                1 => vals.push(Datum::Float(buf.get_f64_le())),
                2 => {
                    let l = buf.get_u32_le() as usize;
                    let s = String::from_utf8(buf.split_to(l).to_vec())
                        .map_err(|e| EngineError::Other(format!("bad shuffle frame: {e}")))?;
                    vals.push(Datum::Str(s));
                }
                _ => vals.push(Datum::Null),
            }
        }
        out.push_column(ColumnMeta::new(name), Column::from_datums(&vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> PartitionedDatabase {
        let p = PartitionedDatabase::new(n, EngineConfig::duckdb_mem());
        let fact = Table::from_columns(vec![
            ("d", Column::int((0..100).map(|i| i % 10).collect())),
            ("y", Column::float((0..100).map(|i| i as f64).collect())),
        ]);
        let dim = Table::from_columns(vec![
            ("d", Column::int((0..10).collect())),
            ("grp", Column::int((0..10).map(|i| i % 2).collect())),
        ]);
        p.partition_table("f", &fact, "d").unwrap();
        p.replicate_table("dim", &dim).unwrap();
        p
    }

    #[test]
    fn partitioning_preserves_all_rows() {
        let p = cluster(4);
        let total: usize = (0..4).map(|i| p.shard(i).row_count("f").unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn merged_aggregate_matches_single_node() {
        let expected = {
            let p1 = cluster(1);
            p1.query_merged(
                "SELECT grp, SUM(y) AS s, COUNT(*) AS c FROM f JOIN dim USING (d) GROUP BY grp",
                &["grp"],
                &["s", "c"],
            )
            .unwrap()
        };
        for n in [2, 3, 4] {
            let p = cluster(n);
            let got = p
                .query_merged(
                    "SELECT grp, SUM(y) AS s, COUNT(*) AS c FROM f JOIN dim USING (d) GROUP BY grp",
                    &["grp"],
                    &["s", "c"],
                )
                .unwrap();
            // Compare as maps (group order may differ).
            for row in 0..expected.num_rows() {
                let g = expected.columns[0].get(row);
                let s = expected.columns[1].f64_at(row).unwrap();
                let mut found = false;
                for r2 in 0..got.num_rows() {
                    if got.columns[0].get(r2).sql_cmp(&g) == std::cmp::Ordering::Equal {
                        assert!((got.columns[1].f64_at(r2).unwrap() - s).abs() < 1e-9);
                        found = true;
                    }
                }
                assert!(found, "group {g:?} missing with {n} machines");
            }
            if n > 1 {
                assert!(
                    p.shuffle_bytes.load(std::sync::atomic::Ordering::Relaxed) > 0,
                    "shuffle stage must move bytes"
                );
            }
        }
    }

    #[test]
    fn execute_all_applies_everywhere() {
        let p = cluster(3);
        p.execute_all("UPDATE f SET y = 0.0").unwrap();
        let t = p
            .query_merged("SELECT SUM(y) AS s FROM f", &[], &["s"])
            .unwrap();
        assert_eq!(t.columns[0].f64_at(0).unwrap(), 0.0);
    }
}
