//! Columnar storage: typed vectors with optional validity bitmaps and
//! per-column string dictionaries.

use crate::datum::{DataType, Datum};

/// Physical column data. Strings are dictionary-encoded: `codes[i]` indexes
/// into `dict`.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-encoded strings.
    Str {
        /// Distinct values, in first-appearance order.
        dict: Vec<String>,
        /// Per-row indexes into `dict`.
        codes: Vec<u32>,
    },
}

/// A column: data plus an optional validity mask (`None` = no NULLs).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The typed values.
    pub data: ColumnData,
    /// Per-row validity mask (`None` = no NULLs).
    pub validity: Option<Vec<bool>>,
}

/// Hashable per-row key for joins and group-by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HKey {
    /// NULL key (groups all NULLs together).
    Null,
    /// Integer key.
    Int(i64),
    /// f64 bit pattern (canonicalized: -0.0 → 0.0, NaNs collapse).
    Float(u64),
    /// String key (compared by content, not dictionary code).
    Str(String),
}

/// f64 bit pattern with `-0.0` canonicalized to `0.0` — the single
/// equality rule shared by [`HKey`], the encoded-key paths in `keys`,
/// and row-mode hashing, so they can never diverge.
pub(crate) fn canonical_f64_bits(v: f64) -> u64 {
    if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

impl Column {
    /// An integer column with no NULLs.
    pub fn int(values: Vec<i64>) -> Column {
        Column {
            data: ColumnData::Int(values),
            validity: None,
        }
    }

    /// A float column with no NULLs.
    pub fn float(values: Vec<f64>) -> Column {
        Column {
            data: ColumnData::Float(values),
            validity: None,
        }
    }

    /// A dictionary-encoded string column with no NULLs.
    pub fn str(values: Vec<String>) -> Column {
        let mut dict: Vec<String> = Vec::new();
        let mut index: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let code = *index.entry(v.clone()).or_insert_with(|| {
                dict.push(v);
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        Column {
            data: ColumnData::Str { dict, codes },
            validity: None,
        }
    }

    /// Build a column from row values, inferring the type (Float if any
    /// float present, else Int; Str if any string). All-NULL defaults to
    /// Float.
    pub fn from_datums(values: &[Datum]) -> Column {
        let mut has_float = false;
        let mut has_str = false;
        let mut has_null = false;
        for v in values {
            match v {
                Datum::Float(_) => has_float = true,
                Datum::Str(_) => has_str = true,
                Datum::Null => has_null = true,
                Datum::Int(_) => {}
            }
        }
        let validity = if has_null {
            Some(values.iter().map(|v| !v.is_null()).collect())
        } else {
            None
        };
        let data = if has_str {
            let mut dict: Vec<String> = Vec::new();
            let mut index: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
            let mut codes = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Datum::Str(s) => {
                        let code = *index.entry(s.as_str()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        });
                        codes.push(code);
                    }
                    _ => codes.push(0),
                }
            }
            if dict.is_empty() {
                dict.push(String::new());
            }
            ColumnData::Str { dict, codes }
        } else if has_float || values.is_empty() || values.iter().all(Datum::is_null) {
            ColumnData::Float(values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect())
        } else {
            ColumnData::Int(values.iter().map(|v| v.as_i64().unwrap_or(0)).collect())
        };
        Column { data, validity }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str { .. } => DataType::Str,
        }
    }

    /// Is row `i` non-NULL?
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v[i])
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |v| v.iter().filter(|b| !**b).count())
    }

    /// Value at row `i` as a [`Datum`] (NULL-aware).
    pub fn get(&self, i: usize) -> Datum {
        if !self.is_valid(i) {
            return Datum::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Datum::Int(v[i]),
            ColumnData::Float(v) => Datum::Float(v[i]),
            ColumnData::Str { dict, codes } => Datum::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Numeric value at `i` (NULL → None, strings → None).
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            ColumnData::Str { .. } => None,
        }
    }

    /// Hash key at row `i`, suitable for joins / group-by.
    pub fn hkey(&self, i: usize) -> HKey {
        if !self.is_valid(i) {
            return HKey::Null;
        }
        match &self.data {
            ColumnData::Int(v) => HKey::Int(v[i]),
            ColumnData::Float(v) => HKey::Float(canonical_f64_bits(v[i])),
            ColumnData::Str { dict, codes } => HKey::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Gather rows by index, producing a new column.
    pub fn take(&self, indices: &[u32]) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|v| indices.iter().map(|&i| v[i as usize]).collect());
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => {
                ColumnData::Float(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: indices.iter().map(|&i| codes[i as usize]).collect(),
            },
        };
        Column { data, validity }
    }

    /// Gather with optional indices; `None` produces NULL (outer joins).
    pub fn take_nullable(&self, indices: &[Option<u32>]) -> Column {
        let mut validity = Vec::with_capacity(indices.len());
        for &ix in indices {
            validity.push(match ix {
                Some(i) => self.is_valid(i as usize),
                None => false,
            });
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(
                indices
                    .iter()
                    .map(|ix| ix.map_or(0, |i| v[i as usize]))
                    .collect(),
            ),
            ColumnData::Float(v) => ColumnData::Float(
                indices
                    .iter()
                    .map(|ix| ix.map_or(0.0, |i| v[i as usize]))
                    .collect(),
            ),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: indices
                    .iter()
                    .map(|ix| ix.map_or(0, |i| codes[i as usize]))
                    .collect(),
            },
        };
        Column {
            data,
            validity: Some(validity),
        }
    }

    /// First `n` rows (cheap prefix truncation — no index vector or
    /// bounds-checked gather; `n` is clamped to the column length).
    pub fn head(&self, n: usize) -> Column {
        let n = n.min(self.len());
        let validity = self.validity.as_ref().map(|v| v[..n].to_vec());
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(v[..n].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[..n].to_vec()),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: dict.clone(),
                codes: codes[..n].to_vec(),
            },
        };
        Column { data, validity }
    }

    /// Keep only rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let mut indices = Vec::with_capacity(mask.iter().filter(|b| **b).count());
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                indices.push(i as u32);
            }
        }
        self.take(&indices)
    }

    /// Coerce to a `Vec<f64>` (NULL → NaN). Errors on string columns.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, crate::error::EngineError> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        match &self.data {
            ColumnData::Int(v) => {
                for (i, &x) in v.iter().enumerate() {
                    out.push(if self.is_valid(i) { x as f64 } else { f64::NAN });
                }
            }
            ColumnData::Float(v) => {
                for (i, &x) in v.iter().enumerate() {
                    out.push(if self.is_valid(i) { x } else { f64::NAN });
                }
            }
            ColumnData::Str { .. } => {
                return Err(crate::error::EngineError::TypeMismatch(
                    "cannot coerce string column to f64".into(),
                ))
            }
        }
        Ok(out)
    }

    /// Borrow the i64 data if this is an Int column with no NULLs.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match (&self.data, &self.validity) {
            (ColumnData::Int(v), None) => Some(v),
            _ => None,
        }
    }

    /// Borrow the f64 data if this is a Float column with no NULLs.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match (&self.data, &self.validity) {
            (ColumnData::Float(v), None) => Some(v),
            _ => None,
        }
    }

    /// Rough heap size in bytes (for memory-cap simulation).
    pub fn byte_size(&self) -> usize {
        let base = match &self.data {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str { dict, codes } => {
                codes.len() * 4 + dict.iter().map(|s| s.len() + 24).sum::<usize>()
            }
        };
        base + self.validity.as_ref().map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_dictionary_dedup() {
        let c = Column::str(vec!["a".into(), "b".into(), "a".into()]);
        match &c.data {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &vec![0, 1, 0]);
            }
            _ => panic!(),
        }
        assert_eq!(c.get(2), Datum::Str("a".into()));
    }

    #[test]
    fn from_datums_infers_types() {
        let c = Column::from_datums(&[Datum::Int(1), Datum::Int(2)]);
        assert_eq!(c.dtype(), DataType::Int);
        let c = Column::from_datums(&[Datum::Int(1), Datum::Float(2.0)]);
        assert_eq!(c.dtype(), DataType::Float);
        let c = Column::from_datums(&[Datum::Null, Datum::Int(2)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Datum::Null);
    }

    #[test]
    fn take_and_filter() {
        let c = Column::int(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 0]);
        assert_eq!(t.get(0), Datum::Int(40));
        assert_eq!(t.get(1), Datum::Int(10));
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1), Datum::Int(30));
    }

    #[test]
    fn take_nullable_produces_nulls() {
        let c = Column::float(vec![1.0, 2.0]);
        let t = c.take_nullable(&[Some(1), None]);
        assert_eq!(t.get(0), Datum::Float(2.0));
        assert_eq!(t.get(1), Datum::Null);
    }

    #[test]
    fn hkey_canonicalizes_negative_zero() {
        let c = Column::float(vec![0.0, -0.0]);
        assert_eq!(c.hkey(0), c.hkey(1));
    }

    #[test]
    fn to_f64_nulls_become_nan() {
        let c = Column::from_datums(&[Datum::Float(1.0), Datum::Null]);
        let v = c.to_f64_vec().unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_nan());
    }
}
