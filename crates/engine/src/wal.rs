//! Write-ahead log.
//!
//! Disk-backed engine configurations log every write (full before/after
//! column images for updates, full table images for `CREATE TABLE AS`)
//! before applying it — the paper calls WAL out as one of the fundamental
//! DBMS mechanisms that make residual updates slow. The log format is a
//! simple length-prefixed record stream built with the `bytes` crate.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use bytes::{BufMut, BytesMut};

use crate::column::{Column, ColumnData};
use crate::error::Result;

/// Record kinds in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Full-column after-image of an `UPDATE`.
    UpdateColumn = 1,
    /// `CREATE TABLE` with its initial contents.
    CreateTable = 2,
    /// `DROP TABLE`.
    DropTable = 3,
}

/// The write-ahead log. When constructed without a path it still encodes
/// every record (so the CPU cost of logging is paid) but discards the
/// bytes — this models a `minimum logging` configuration.
pub struct Wal {
    writer: Option<BufWriter<File>>,
    /// fsync after every record (off by default; the paper sets recovery to
    /// the lowest level).
    pub sync: bool,
    /// Total bytes encoded (whether or not they hit disk).
    pub bytes_logged: u64,
    /// Number of records logged.
    pub records: u64,
}

impl Wal {
    /// In-memory (encode-only) log.
    pub fn disabled() -> Wal {
        Wal {
            writer: None,
            sync: false,
            bytes_logged: 0,
            records: 0,
        }
    }

    /// Log to a file at `path` (truncates any existing log).
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal {
            writer: Some(BufWriter::new(file)),
            sync: false,
            bytes_logged: 0,
            records: 0,
        })
    }

    /// Is the log actually backed by a file?
    pub fn is_persistent(&self) -> bool {
        self.writer.is_some()
    }

    fn encode_column(buf: &mut BytesMut, col: &Column) {
        match &col.data {
            ColumnData::Int(v) => {
                buf.put_u8(0);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    buf.put_i64_le(x);
                }
            }
            ColumnData::Float(v) => {
                buf.put_u8(1);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    buf.put_f64_le(x);
                }
            }
            ColumnData::Str { dict, codes } => {
                buf.put_u8(2);
                buf.put_u64_le(dict.len() as u64);
                for s in dict {
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
                buf.put_u64_le(codes.len() as u64);
                for &c in codes {
                    buf.put_u32_le(c);
                }
            }
        }
        match &col.validity {
            Some(v) => {
                buf.put_u8(1);
                for &b in v {
                    buf.put_u8(b as u8);
                }
            }
            None => buf.put_u8(0),
        }
    }

    fn write_record(&mut self, kind: RecordKind, payload: &BytesMut) -> Result<()> {
        self.bytes_logged += payload.len() as u64 + 9;
        self.records += 1;
        if let Some(w) = &mut self.writer {
            w.write_all(&[kind as u8])?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(payload)?;
            if self.sync {
                w.flush()?;
                w.get_ref().sync_data()?;
            }
        }
        Ok(())
    }

    /// Log a full-column update (before-image is handled by the undo log;
    /// the WAL carries the after-image, as in redo logging).
    pub fn log_update_column(&mut self, table: &str, column: &str, after: &Column) -> Result<()> {
        let mut buf = BytesMut::with_capacity(after.len() * 8 + 64);
        buf.put_u32_le(table.len() as u32);
        buf.put_slice(table.as_bytes());
        buf.put_u32_le(column.len() as u32);
        buf.put_slice(column.as_bytes());
        Self::encode_column(&mut buf, after);
        self.write_record(RecordKind::UpdateColumn, &buf)
    }

    /// Log the creation of a table (all column images).
    pub fn log_create_table(&mut self, table: &str, columns: &[Column]) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(table.len() as u32);
        buf.put_slice(table.as_bytes());
        buf.put_u32_le(columns.len() as u32);
        for c in columns {
            Self::encode_column(&mut buf, c);
        }
        self.write_record(RecordKind::CreateTable, &buf)
    }

    /// Log a table drop.
    pub fn log_drop_table(&mut self, table: &str) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(table.len() as u32);
        buf.put_slice(table.as_bytes());
        self.write_record(RecordKind::DropTable, &buf)
    }

    /// Flush any buffered bytes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(w) = &mut self.writer {
            w.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_wal_counts_bytes() {
        let mut wal = Wal::disabled();
        wal.log_update_column("f", "s", &Column::float(vec![1.0; 100]))
            .unwrap();
        assert!(wal.bytes_logged > 800);
        assert_eq!(wal.records, 1);
    }

    #[test]
    fn file_wal_writes() {
        let dir = std::env::temp_dir().join(format!("jb_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_create_table("t", &[Column::int(vec![1, 2, 3])])
            .unwrap();
        wal.log_drop_table("t").unwrap();
        wal.flush().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len > 0);
        assert_eq!(len, wal.bytes_logged);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn logs_string_columns() {
        let mut wal = Wal::disabled();
        wal.log_update_column("t", "c", &Column::str(vec!["abc".into(), "de".into()]))
            .unwrap();
        assert!(wal.bytes_logged > 0);
    }
}
