//! Write-ahead log.
//!
//! Disk-backed engine configurations log every write (full after-images:
//! column images for updates, whole-table images for created tables)
//! before applying it — the paper calls WAL out as one of the fundamental
//! DBMS mechanisms that make residual updates slow. The log format is a
//! simple length-prefixed record stream; column payloads use the shared
//! checked codec ([`crate::storage::codec`]), so the WAL, the page store
//! and the wire protocol all serialize columns the same way.
//!
//! The paged (out-of-core) engine additionally makes the log *the*
//! durability story: every write statement ends with a [`RecordKind::Commit`]
//! record, and a paged engine fsyncs on commit (`sync = true` — the
//! non-paged disk configurations keep the paper's lowest recovery level
//! and never fsync). On open, [`replay`] decodes the committed prefix of
//! an existing log — tolerating a torn tail from a crash — and the engine
//! rebuilds every committed table from it (see `Database::open`).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::column::Column;
use crate::error::Result;
use crate::storage::codec::{self, ByteReader};
use crate::table::Table;

/// Record kinds in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Full-column after-image of an `UPDATE`.
    UpdateColumn = 1,
    /// `CREATE TABLE` with its initial contents (column names + images).
    CreateTable = 2,
    /// `DROP TABLE`.
    DropTable = 3,
    /// Statement boundary: everything logged since the previous commit is
    /// durable as a unit. Replay discards an uncommitted tail.
    Commit = 4,
}

/// One decoded log record (the unit [`replay`] returns).
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// Full-column after-image of an `UPDATE`.
    UpdateColumn {
        /// Table name as logged.
        table: String,
        /// Column name as logged.
        column: String,
        /// The after-image.
        after: Column,
    },
    /// A created table with its full contents.
    CreateTable {
        /// Table name as logged.
        name: String,
        /// The table image (column names + data).
        table: Table,
    },
    /// A dropped table.
    DropTable {
        /// Table name as logged.
        name: String,
    },
    /// Statement boundary.
    Commit,
}

/// The write-ahead log. When constructed without a path it still encodes
/// every record (so the CPU cost of logging is paid) but discards the
/// bytes — this models a `minimum logging` configuration.
pub struct Wal {
    writer: Option<BufWriter<File>>,
    /// fsync after every commit record (off by default; the paper sets
    /// recovery to the lowest level — the paged engine turns this on).
    pub sync: bool,
    /// Total bytes encoded (whether or not they hit disk).
    pub bytes_logged: u64,
    /// Number of records logged.
    pub records: u64,
    /// Bytes known durable (through the last fsync). Crash simulation
    /// truncates the file back to this offset.
    synced_bytes: u64,
}

impl Wal {
    /// In-memory (encode-only) log.
    pub fn disabled() -> Wal {
        Wal {
            writer: None,
            sync: false,
            bytes_logged: 0,
            records: 0,
            synced_bytes: 0,
        }
    }

    /// Log to a file at `path` (truncates any existing log).
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal {
            writer: Some(BufWriter::new(file)),
            sync: false,
            bytes_logged: 0,
            records: 0,
            synced_bytes: 0,
        })
    }

    /// Reopen an existing log for appending, first truncating it to
    /// `committed_len` (the durable prefix [`replay`] identified) so a
    /// torn tail never precedes fresh records. `records` seeds the
    /// record counter with the replayed count.
    pub fn open_append(path: &Path, committed_len: u64, records: u64) -> Result<Wal> {
        // Not `truncate(true)`: the committed prefix must survive; only
        // the torn tail past `committed_len` is cut by `set_len`.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.set_len(committed_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(committed_len))?;
        Ok(Wal {
            writer: Some(BufWriter::new(file)),
            sync: false,
            bytes_logged: committed_len,
            records,
            synced_bytes: committed_len,
        })
    }

    /// Is the log actually backed by a file?
    pub fn is_persistent(&self) -> bool {
        self.writer.is_some()
    }

    fn write_record(&mut self, kind: RecordKind, payload: &[u8]) -> Result<()> {
        self.bytes_logged += payload.len() as u64 + 9;
        self.records += 1;
        if let Some(w) = &mut self.writer {
            w.write_all(&[kind as u8])?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(payload)?;
            if self.sync && kind == RecordKind::Commit {
                w.flush()?;
                w.get_ref().sync_data()?;
                self.synced_bytes = self.bytes_logged;
            }
        }
        Ok(())
    }

    /// Log a full-column update (before-image is handled by the undo log;
    /// the WAL carries the after-image, as in redo logging).
    pub fn log_update_column(&mut self, table: &str, column: &str, after: &Column) -> Result<()> {
        let mut buf = Vec::with_capacity(after.byte_size() + 64);
        codec::put_string(&mut buf, table);
        codec::put_string(&mut buf, column);
        codec::encode_column(&mut buf, after);
        self.write_record(RecordKind::UpdateColumn, &buf)
    }

    /// Log the creation of a table (column names + full images, so replay
    /// can rebuild the table without any other source of schema).
    pub fn log_create_table(&mut self, name: &str, table: &Table) -> Result<()> {
        let mut buf = Vec::with_capacity(table.byte_size() + 64);
        codec::put_string(&mut buf, name);
        buf.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
        for (m, c) in table.meta.iter().zip(&table.columns) {
            codec::put_string(&mut buf, &m.name);
            codec::encode_column(&mut buf, c);
        }
        self.write_record(RecordKind::CreateTable, &buf)
    }

    /// Log a table drop.
    pub fn log_drop_table(&mut self, table: &str) -> Result<()> {
        let mut buf = Vec::new();
        codec::put_string(&mut buf, table);
        self.write_record(RecordKind::DropTable, &buf)
    }

    /// Log a statement boundary (fsyncs when `sync` is set).
    pub fn log_commit(&mut self) -> Result<()> {
        self.write_record(RecordKind::Commit, &[])
    }

    /// After a checkpoint has made the log's contents redundant, cut the
    /// log back to empty and reset all counters. fsyncs the truncation so
    /// a subsequent crash cannot resurrect pre-checkpoint records on top
    /// of the new snapshot.
    pub fn truncate_to_empty(&mut self) -> Result<()> {
        if let Some(w) = &mut self.writer {
            w.flush()?;
            let file = w.get_mut();
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.sync_data()?;
        }
        self.bytes_logged = 0;
        self.records = 0;
        self.synced_bytes = 0;
        Ok(())
    }

    /// Flush any buffered bytes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(w) = &mut self.writer {
            w.flush()?;
        }
        Ok(())
    }

    /// Test hook: model a process crash. Buffered (never-flushed) bytes
    /// are dropped on the floor and the file is truncated back to the
    /// last fsync — exactly the state a real crash can leave behind. The
    /// log is unusable afterwards (further appends are discarded).
    pub fn simulate_crash(&mut self) -> Result<()> {
        if let Some(w) = self.writer.take() {
            let (file, _lost_buffer) = w.into_parts();
            file.set_len(self.synced_bytes)?;
            file.sync_data()?;
        }
        Ok(())
    }
}

/// Decode the committed prefix of a log file. Returns the committed
/// records in order (uncommitted or torn trailing records are discarded,
/// never an error — that is the crash contract) plus the byte offset of
/// the durable prefix and the number of records in it.
pub fn replay(path: &Path) -> Result<(Vec<WalRecord>, u64, u64)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut committed: Vec<WalRecord> = Vec::new();
    let mut pending: Vec<WalRecord> = Vec::new();
    let mut committed_len = 0u64;
    let mut committed_records = 0u64;
    let mut pending_records = 0u64;
    let mut pos = 0usize;
    loop {
        // Record header: kind u8, payload_len u64 LE.
        if bytes.len() - pos < 9 {
            break;
        }
        let kind = bytes[pos];
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8 bytes")) as usize;
        if bytes.len() - pos - 9 < len {
            break; // torn record
        }
        let payload = &bytes[pos + 9..pos + 9 + len];
        let Ok(record) = decode_record(kind, payload) else {
            break; // corrupt record: everything from here on is suspect
        };
        pos += 9 + len;
        pending_records += 1;
        let is_commit = matches!(record, WalRecord::Commit);
        pending.push(record);
        if is_commit {
            committed.append(&mut pending);
            committed_len = pos as u64;
            committed_records += pending_records;
            pending_records = 0;
        }
    }
    Ok((committed, committed_len, committed_records))
}

fn decode_record(kind: u8, payload: &[u8]) -> Result<WalRecord> {
    let mut r = ByteReader::new(payload);
    let record = match kind {
        k if k == RecordKind::UpdateColumn as u8 => WalRecord::UpdateColumn {
            table: r.string()?,
            column: r.string()?,
            after: codec::decode_column(&mut r)?,
        },
        k if k == RecordKind::CreateTable as u8 => {
            let name = r.string()?;
            let ncols = r.u32()? as usize;
            let mut table = Table::new();
            for _ in 0..ncols {
                let col_name = r.string()?;
                let col = codec::decode_column(&mut r)?;
                table.push_column(crate::table::ColumnMeta::new(col_name), col);
            }
            WalRecord::CreateTable { name, table }
        }
        k if k == RecordKind::DropTable as u8 => WalRecord::DropTable { name: r.string()? },
        k if k == RecordKind::Commit as u8 => WalRecord::Commit,
        _ => return Err(codec::corrupt("unknown WAL record kind")),
    };
    r.done()?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("jb_wal_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disabled_wal_counts_bytes() {
        let mut wal = Wal::disabled();
        wal.log_update_column("f", "s", &Column::float(vec![1.0; 100]))
            .unwrap();
        assert!(wal.bytes_logged > 800);
        assert_eq!(wal.records, 1);
    }

    #[test]
    fn file_wal_writes() {
        let dir = tmp_dir("writes");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.log_create_table(
            "t",
            &Table::from_columns(vec![("a", Column::int(vec![1, 2, 3]))]),
        )
        .unwrap();
        wal.log_drop_table("t").unwrap();
        wal.flush().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len > 0);
        assert_eq!(len, wal.bytes_logged);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn logs_string_columns() {
        let mut wal = Wal::disabled();
        wal.log_update_column("t", "c", &Column::str(vec!["abc".into(), "de".into()]))
            .unwrap();
        assert!(wal.bytes_logged > 0);
    }

    #[test]
    fn replay_returns_only_the_committed_prefix() {
        let dir = tmp_dir("prefix");
        let path = dir.join("wal.log");
        let table = Table::from_columns(vec![("a", Column::int(vec![7, 8]))]);
        let mut wal = Wal::open(&path).unwrap();
        wal.log_create_table("t1", &table).unwrap();
        wal.log_commit().unwrap();
        wal.log_create_table("t2", &table).unwrap();
        // No commit for t2 — and the process "crashes".
        wal.flush().unwrap();
        drop(wal);
        let (records, committed_len, committed_records) = replay(&path).unwrap();
        assert_eq!(committed_records, 2, "create + commit");
        assert!(committed_len < std::fs::metadata(&path).unwrap().len());
        assert!(matches!(
            &records[0],
            WalRecord::CreateTable { name, table: t } if name == "t1" && t.num_rows() == 2
        ));
        assert!(matches!(&records[1], WalRecord::Commit));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_tolerates_a_torn_tail_and_append_resumes_cleanly() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let table = Table::from_columns(vec![("a", Column::float(vec![1.5, -0.0]))]);
        let mut wal = Wal::open(&path).unwrap();
        wal.log_create_table("t", &table).unwrap();
        wal.log_commit().unwrap();
        wal.flush().unwrap();
        drop(wal);
        let committed = std::fs::metadata(&path).unwrap().len();
        // Append garbage: half a record header, as a crash mid-write would.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 0xFF, 0xFF]).unwrap();
        drop(f);
        let (records, committed_len, committed_records) = replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(committed_len, committed);
        // Reopen for append: the torn tail is cut off, new records land
        // right after the durable prefix and replay cleanly.
        let mut wal = Wal::open_append(&path, committed_len, committed_records).unwrap();
        wal.log_drop_table("t").unwrap();
        wal.log_commit().unwrap();
        wal.flush().unwrap();
        drop(wal);
        let (records, _, _) = replay(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert!(matches!(&records[2], WalRecord::DropTable { name } if name == "t"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_crash_discards_unsynced_bytes() {
        let dir = tmp_dir("crash");
        let path = dir.join("wal.log");
        let table = Table::from_columns(vec![("a", Column::int(vec![1]))]);
        let mut wal = Wal::open(&path).unwrap();
        wal.sync = true;
        wal.log_create_table("durable", &table).unwrap();
        wal.log_commit().unwrap(); // fsyncs
        wal.log_create_table("lost", &table).unwrap(); // buffered only
        wal.simulate_crash().unwrap();
        let (records, _, _) = replay(&path).unwrap();
        assert_eq!(records.len(), 2, "only the fsynced statement survives");
        assert!(matches!(&records[0], WalRecord::CreateTable { name, .. } if name == "durable"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
