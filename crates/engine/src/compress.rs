//! Lightweight run-length columnar compression.
//!
//! The paper identifies columnar compression as one of the reasons residual
//! updates are slow on DBMSes: an `UPDATE` of a compressed column must
//! decompress, modify and recompress it, and `CREATE TABLE` pays the
//! compression cost for every copied column. This module provides a real
//! (if simple) run-length encoding so those costs arise from genuine work.

use crate::column::{Column, ColumnData};
use crate::datum::DataType;

/// A run-length-encoded column. Values are stored as `(bits, run_len)`
/// pairs; `bits` is the i64 value, the f64 bit pattern, or the dictionary
/// code depending on `dtype`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedColumn {
    /// Logical data type of the column.
    pub dtype: DataType,
    /// Logical (uncompressed) row count.
    pub len: usize,
    /// `(bits, run_len)` pairs in row order.
    pub runs: Vec<(u64, u32)>,
    /// Dictionary for string columns.
    pub dict: Option<Vec<String>>,
    /// RLE of the validity mask, if the column has NULLs.
    pub validity_runs: Option<Vec<(bool, u32)>>,
}

fn rle_u64(values: impl Iterator<Item = u64>) -> Vec<(u64, u32)> {
    let mut runs: Vec<(u64, u32)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((last, n)) if *last == v && *n < u32::MAX => *n += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs
}

/// Compress a column.
pub fn compress(col: &Column) -> CompressedColumn {
    let len = col.len();
    let validity_runs = col.validity.as_ref().map(|v| {
        let mut runs: Vec<(bool, u32)> = Vec::new();
        for &b in v {
            match runs.last_mut() {
                Some((last, n)) if *last == b && *n < u32::MAX => *n += 1,
                _ => runs.push((b, 1)),
            }
        }
        runs
    });
    match &col.data {
        ColumnData::Int(v) => CompressedColumn {
            dtype: DataType::Int,
            len,
            runs: rle_u64(v.iter().map(|&x| x as u64)),
            dict: None,
            validity_runs,
        },
        ColumnData::Float(v) => CompressedColumn {
            dtype: DataType::Float,
            len,
            runs: rle_u64(v.iter().map(|&x| x.to_bits())),
            dict: None,
            validity_runs,
        },
        ColumnData::Str { dict, codes } => CompressedColumn {
            dtype: DataType::Str,
            len,
            runs: rle_u64(codes.iter().map(|&c| c as u64)),
            dict: Some(dict.clone()),
            validity_runs,
        },
    }
}

/// Decompress back into a plain column.
pub fn decompress(cc: &CompressedColumn) -> Column {
    let validity = cc.validity_runs.as_ref().map(|runs| {
        let mut v = Vec::with_capacity(cc.len);
        for &(b, n) in runs {
            v.extend(std::iter::repeat_n(b, n as usize));
        }
        v
    });
    let data = match cc.dtype {
        DataType::Int => {
            let mut v = Vec::with_capacity(cc.len);
            for &(bits, n) in &cc.runs {
                v.extend(std::iter::repeat_n(bits as i64, n as usize));
            }
            ColumnData::Int(v)
        }
        DataType::Float => {
            let mut v = Vec::with_capacity(cc.len);
            for &(bits, n) in &cc.runs {
                v.extend(std::iter::repeat_n(f64::from_bits(bits), n as usize));
            }
            ColumnData::Float(v)
        }
        DataType::Str => {
            let mut codes = Vec::with_capacity(cc.len);
            for &(bits, n) in &cc.runs {
                codes.extend(std::iter::repeat_n(bits as u32, n as usize));
            }
            ColumnData::Str {
                dict: cc.dict.clone().unwrap_or_default(),
                codes,
            }
        }
    };
    Column { data, validity }
}

impl CompressedColumn {
    /// Compressed size in bytes (for stats / compression-ratio reporting).
    pub fn byte_size(&self) -> usize {
        self.runs.len() * 12
            + self
                .dict
                .as_ref()
                .map_or(0, |d| d.iter().map(|s| s.len() + 24).sum())
            + self.validity_runs.as_ref().map_or(0, |v| v.len() * 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    #[test]
    fn roundtrip_int() {
        let c = Column::int(vec![1, 1, 1, 2, 2, 3]);
        let cc = compress(&c);
        assert_eq!(cc.runs.len(), 3);
        assert_eq!(decompress(&cc), c);
    }

    #[test]
    fn roundtrip_float_and_str() {
        let c = Column::float(vec![0.5, 0.5, -1.0]);
        assert_eq!(decompress(&compress(&c)), c);
        let c = Column::str(vec!["x".into(), "x".into(), "y".into()]);
        assert_eq!(decompress(&compress(&c)), c);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let c = Column::from_datums(&[Datum::Int(1), Datum::Null, Datum::Null, Datum::Int(1)]);
        let cc = compress(&c);
        let back = decompress(&cc);
        assert_eq!(back.get(1), Datum::Null);
        assert_eq!(back.get(3), Datum::Int(1));
    }

    #[test]
    fn compresses_constant_column_well() {
        let c = Column::int(vec![7; 10_000]);
        let cc = compress(&c);
        assert_eq!(cc.runs.len(), 1);
        assert!(cc.byte_size() < c.byte_size() / 100);
    }

    #[test]
    fn empty_column() {
        let c = Column::int(vec![]);
        let cc = compress(&c);
        assert_eq!(decompress(&cc).len(), 0);
    }
}
