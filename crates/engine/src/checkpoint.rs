//! Catalog checkpoints: the WAL-truncation story of the paged engine.
//!
//! Without a checkpoint the WAL is the *only* durable representation of
//! the database, so it grows without bound and `Database::open` replays
//! the entire history. A checkpoint snapshots the whole catalog (every
//! table's schema and column images, via the same checked codec as the
//! WAL and the page store) into a sidecar file `checkpoint.jbc`, after
//! which the log can be truncated to empty.
//!
//! Crash safety is by *atomic replacement*: the snapshot is written to
//! `checkpoint.jbc.tmp`, fsynced, renamed over `checkpoint.jbc`, and the
//! directory is fsynced — only then is the WAL truncated. Recovery loads
//! the checkpoint (if any) and replays the *whole* current WAL on top;
//! because WAL records are full after-images, replaying records that
//! predate the checkpoint is idempotent. Every crash window is covered:
//!
//! * crash while writing the tmp file — the torn tmp is ignored (and
//!   deleted at the next open); the previous checkpoint + full WAL
//!   recover the committed state;
//! * crash after the rename but before the WAL truncation — the new
//!   checkpoint + the full (now partly redundant) WAL replay to the
//!   same state;
//! * crash after the truncation — the new checkpoint alone is the
//!   committed state.
//!
//! A *corrupt* `checkpoint.jbc` (torn rename target) is impossible under
//! POSIX rename atomicity, so decode failures are reported as hard
//! errors rather than silently opening an empty database.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::error::Result;
use crate::storage::codec::{self, ByteReader};
use crate::table::{ColumnMeta, Table};

/// File name of the current checkpoint inside a paged database directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.jbc";
/// Scratch name the snapshot is written under before the atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.jbc.tmp";

const MAGIC: u32 = 0x4A42_4350; // "JBCP"
const VERSION: u32 = 1;

/// Streaming writer for a checkpoint snapshot: tables are appended one at
/// a time (so peak memory is one materialized table, not the catalog),
/// then [`CheckpointWriter::finish`] makes the snapshot durable and
/// atomically installs it.
pub struct CheckpointWriter {
    out: BufWriter<File>,
    tmp: PathBuf,
    dest: PathBuf,
    dir: PathBuf,
    bytes: u64,
    declared: u32,
    written: u32,
}

impl CheckpointWriter {
    /// Start a snapshot of `num_tables` tables in database directory `dir`.
    pub fn create(dir: &Path, num_tables: u32) -> Result<CheckpointWriter> {
        let tmp = dir.join(CHECKPOINT_TMP);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        let mut out = BufWriter::new(file);
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&num_tables.to_le_bytes());
        out.write_all(&header)?;
        Ok(CheckpointWriter {
            out,
            tmp,
            dest: dir.join(CHECKPOINT_FILE),
            dir: dir.to_path_buf(),
            bytes: header.len() as u64,
            declared: num_tables,
            written: 0,
        })
    }

    /// Append one table (name + schema + full column images).
    pub fn add_table(&mut self, name: &str, table: &Table) -> Result<()> {
        let mut buf = Vec::with_capacity(table.byte_size() + 64);
        codec::put_string(&mut buf, name);
        buf.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
        for (m, c) in table.meta.iter().zip(&table.columns) {
            codec::put_string(&mut buf, &m.name);
            codec::encode_column(&mut buf, c);
        }
        self.out.write_all(&buf)?;
        self.bytes += buf.len() as u64;
        self.written += 1;
        Ok(())
    }

    /// fsync the snapshot, atomically rename it into place, and fsync the
    /// directory so the rename itself is durable. Only after this returns
    /// may the caller truncate the WAL. Returns the snapshot size.
    pub fn finish(mut self) -> Result<u64> {
        if self.written != self.declared {
            return Err(codec::corrupt("checkpoint table count mismatch"));
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        fs::rename(&self.tmp, &self.dest)?;
        // Durability of the rename needs the directory entry flushed too;
        // without this, a crash could resurrect the *old* checkpoint after
        // the WAL was truncated — real data loss.
        sync_dir(&self.dir)?;
        Ok(self.bytes)
    }
}

/// fsync a directory (making renames/creates inside it durable).
fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Load the checkpoint in `dir`, if one exists. Also clears any torn
/// tmp file left by a crash mid-checkpoint. Returns the snapshot tables
/// in file order, or `None` when no checkpoint has ever completed.
/// Decode failures are hard errors (see module docs).
pub fn load(dir: &Path) -> Result<Option<Vec<(String, Table)>>> {
    let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));
    let path = dir.join(CHECKPOINT_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    let mut r = ByteReader::new(&bytes);
    if r.u32()? != MAGIC {
        return Err(codec::corrupt("checkpoint magic mismatch"));
    }
    if r.u32()? != VERSION {
        return Err(codec::corrupt("unsupported checkpoint version"));
    }
    let n = r.u32()? as usize;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let ncols = r.u32()? as usize;
        let mut t = Table::new();
        for _ in 0..ncols {
            let col_name = r.string()?;
            let col = codec::decode_column(&mut r)?;
            t.push_column(ColumnMeta::new(col_name), col);
        }
        tables.push((name, t));
    }
    r.done()?;
    Ok(Some(tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jb_ckpt_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn two_tables() -> Vec<(String, Table)> {
        vec![
            (
                "alpha".to_string(),
                Table::from_columns(vec![
                    ("k", Column::int(vec![1, 2, 3])),
                    ("v", Column::float(vec![0.5, -0.0, f64::MIN_POSITIVE / 2.0])),
                ]),
            ),
            (
                "beta".to_string(),
                Table::from_columns(vec![("s", Column::str(vec!["a".into(), "bb".into()]))]),
            ),
        ]
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let dir = tmp_dir("roundtrip");
        let tables = two_tables();
        let mut w = CheckpointWriter::create(&dir, tables.len() as u32).unwrap();
        for (name, t) in &tables {
            w.add_table(name, t).unwrap();
        }
        w.finish().unwrap();
        let back = load(&dir).unwrap().expect("checkpoint exists");
        assert_eq!(back.len(), 2);
        for ((n0, t0), (n1, t1)) in tables.iter().zip(&back) {
            assert_eq!(n0, n1);
            assert_eq!(t0, t1, "bit-exact through the checkpoint");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none_and_torn_tmp_is_cleared() {
        let dir = tmp_dir("none");
        fs::write(dir.join(CHECKPOINT_TMP), b"half a snapsho").unwrap();
        assert!(load(&dir).unwrap().is_none());
        assert!(!dir.join(CHECKPOINT_TMP).exists(), "torn tmp cleared");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unfinished_writer_installs_nothing() {
        let dir = tmp_dir("unfinished");
        let tables = two_tables();
        let mut w = CheckpointWriter::create(&dir, 2).unwrap();
        w.add_table("alpha", &tables[0].1).unwrap();
        drop(w); // crash before finish(): only the tmp file exists
        assert!(load(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = tmp_dir("corrupt");
        fs::write(dir.join(CHECKPOINT_FILE), b"JBxx not a checkpoint").unwrap();
        assert!(load(&dir).is_err(), "silent empty open would be data loss");
        fs::remove_dir_all(&dir).unwrap();
    }
}
