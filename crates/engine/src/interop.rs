//! External (dataframe-style) table storage — the `DP` backend.
//!
//! The paper's first column-swap emulation stores the fact table in a
//! Pandas dataframe: DuckDB scans it through a converting adapter (which
//! slows aggregation by ~1.6×) but residual updates become an O(1) column
//! pointer replacement. [`ExternalTable`] reproduces both properties: a
//! scan deep-copies every column into the engine ([`ExternalTable::copy_in`])
//! while [`ExternalTable::replace_column`] swaps an `Arc` pointer.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::table::{ColumnMeta, Table};

/// A table held outside the engine in plain uncompressed arrays.
pub struct ExternalTable {
    names: Vec<String>,
    columns: RwLock<Vec<Arc<Column>>>,
}

impl ExternalTable {
    /// Deep-copy an engine table into external array storage.
    pub fn from_table(t: &Table) -> ExternalTable {
        ExternalTable {
            names: t.meta.iter().map(|m| m.name.clone()).collect(),
            columns: RwLock::new(t.columns.iter().map(|c| Arc::new(c.clone())).collect()),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.read().first().map_or(0, |c| c.len())
    }

    /// Column names, in storage order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Copy the external arrays into an engine table. This is the interop
    /// scan cost; returns the table and the number of bytes copied.
    pub fn copy_in(&self) -> (Table, usize) {
        let cols = self.columns.read();
        let mut t = Table::new();
        let mut bytes = 0;
        for (name, c) in self.names.iter().zip(cols.iter()) {
            bytes += c.byte_size();
            t.push_column(ColumnMeta::new(name.clone()), (**c).clone());
        }
        (t, bytes)
    }

    /// O(1) column replacement: swap in a freshly computed column (a
    /// "new NumPy array" in the paper's terms) without touching the rest.
    pub fn replace_column(&self, name: &str, col: Column) -> Result<()> {
        let idx = self
            .names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
        let mut cols = self.columns.write();
        if col.len() != cols[idx].len() {
            return Err(EngineError::Other(format!(
                "replacement column length {} != table length {}",
                col.len(),
                cols[idx].len()
            )));
        }
        cols[idx] = Arc::new(col);
        Ok(())
    }

    /// Read one column (cheap Arc clone; used by swap).
    pub fn column_arc(&self, name: &str) -> Result<Arc<Column>> {
        let idx = self
            .names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
        Ok(Arc::clone(&self.columns.read()[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_in_roundtrips() {
        let t = Table::from_columns(vec![
            ("a", Column::int(vec![1, 2])),
            ("s", Column::float(vec![0.5, 1.5])),
        ]);
        let ext = ExternalTable::from_table(&t);
        let (back, bytes) = ext.copy_in();
        assert_eq!(back, t);
        assert!(bytes >= 32);
    }

    #[test]
    fn replace_column_is_visible() {
        let t = Table::from_columns(vec![("s", Column::float(vec![1.0, 2.0]))]);
        let ext = ExternalTable::from_table(&t);
        ext.replace_column("s", Column::float(vec![9.0, 8.0]))
            .unwrap();
        let (back, _) = ext.copy_in();
        assert_eq!(back.columns[0], Column::float(vec![9.0, 8.0]));
    }

    #[test]
    fn replace_column_checks_length() {
        let t = Table::from_columns(vec![("s", Column::float(vec![1.0, 2.0]))]);
        let ext = ExternalTable::from_table(&t);
        assert!(ext.replace_column("s", Column::float(vec![1.0])).is_err());
        assert!(ext
            .replace_column("zzz", Column::float(vec![1.0, 2.0]))
            .is_err());
    }
}
