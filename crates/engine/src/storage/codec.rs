//! Checked byte codec for columns, shared by the page store and the WAL.
//!
//! The conventions mirror the wire protocol's column blocks so every
//! serialized form of a column in the system agrees: `f64`s travel by bit
//! pattern (`to_bits`, little-endian), strings as a dictionary plus `u32`
//! codes, and validity as a packed LSB-first bitmap. The decoder is fully
//! checked: every read is bounds-checked and every element count is
//! validated against the remaining bytes *before* any allocation, so
//! truncated or bit-flipped input produces an [`EngineError`] — never a
//! panic, never an attempt to allocate more than the buffer can justify.

use crate::column::{Column, ColumnData};
use crate::error::{EngineError, Result};

/// Data-type tag for integer columns (same value as the wire protocol).
const TAG_INT: u8 = 0;
/// Data-type tag for float columns.
const TAG_FLOAT: u8 = 1;
/// Data-type tag for dictionary-encoded string columns.
const TAG_STR: u8 = 2;

/// Construct the uniform corrupt-input error.
pub(crate) fn corrupt(what: &str) -> EngineError {
    EngineError::Other(format!("corrupt column bytes: {what}"))
}

/// Bounds-checked cursor over a byte buffer.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an element count and validate it against the remaining bytes
    /// (each element occupies at least `elem_size` bytes), so a corrupted
    /// length can never drive an oversized allocation.
    pub fn count(&mut self, elem_size: usize, what: &str) -> Result<usize> {
        let n = self.u64()?;
        let max = (self.remaining() / elem_size.max(1)) as u64;
        if n > max {
            return Err(corrupt(what));
        }
        Ok(n as usize)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(corrupt("string length"));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string utf-8"))
    }

    /// Assert the buffer was consumed exactly.
    pub fn done(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt("trailing bytes"));
        }
        Ok(())
    }
}

/// Append a `u32`-length-prefixed string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serialize one column: data tag, row/element counts, values (floats by
/// bit pattern), then a validity tag (`0` = no NULLs, `1` = packed bitmap,
/// LSB-first within each byte).
pub fn encode_column(out: &mut Vec<u8>, col: &Column) {
    match &col.data {
        ColumnData::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnData::Float(v) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        ColumnData::Str { dict, codes } => {
            out.push(TAG_STR);
            out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
            for s in dict {
                put_string(out, s);
            }
            out.extend_from_slice(&(codes.len() as u64).to_le_bytes());
            for &c in codes {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    match &col.validity {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            let mut packed = vec![0u8; v.len().div_ceil(8)];
            for (i, &b) in v.iter().enumerate() {
                if b {
                    packed[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&packed);
        }
    }
}

/// Decode one column written by [`encode_column`], bit-exactly.
pub fn decode_column(r: &mut ByteReader<'_>) -> Result<Column> {
    let tag = r.u8()?;
    let data = match tag {
        TAG_INT => {
            let n = r.count(8, "int rows")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            ColumnData::Int(v)
        }
        TAG_FLOAT => {
            let n = r.count(8, "float rows")?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(r.u64()?));
            }
            ColumnData::Float(v)
        }
        TAG_STR => {
            let dn = r.count(4, "dict entries")?;
            let mut dict = Vec::with_capacity(dn);
            for _ in 0..dn {
                dict.push(r.string()?);
            }
            let cn = r.count(4, "string codes")?;
            let mut codes = Vec::with_capacity(cn);
            for _ in 0..cn {
                let c = r.u32()?;
                if c as usize >= dict.len() {
                    return Err(corrupt("string code out of dictionary range"));
                }
                codes.push(c);
            }
            ColumnData::Str { dict, codes }
        }
        _ => return Err(corrupt("unknown data tag")),
    };
    let rows = match &data {
        ColumnData::Int(v) => v.len(),
        ColumnData::Float(v) => v.len(),
        ColumnData::Str { codes, .. } => codes.len(),
    };
    let validity = match r.u8()? {
        0 => None,
        1 => {
            let packed = r.take(rows.div_ceil(8))?;
            Some(
                (0..rows)
                    .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
                    .collect(),
            )
        }
        _ => return Err(corrupt("unknown validity tag")),
    };
    Ok(Column { data, validity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    fn roundtrip(col: &Column) -> Column {
        let mut buf = Vec::new();
        encode_column(&mut buf, col);
        let mut r = ByteReader::new(&buf);
        let back = decode_column(&mut r).unwrap();
        r.done().unwrap();
        back
    }

    #[test]
    fn roundtrips_every_dtype() {
        let cols = [
            Column::int(vec![i64::MIN, -1, 0, i64::MAX]),
            Column::float(vec![0.0, -0.0, f64::NAN, f64::INFINITY, 1.5e-300]),
            Column::str(vec!["a".into(), "".into(), "a".into(), "日本".into()]),
            Column::from_datums(&[Datum::Null, Datum::Int(7), Datum::Null]),
            Column::int(vec![]),
        ];
        for col in &cols {
            let back = roundtrip(col);
            assert_eq!(back.len(), col.len());
            let mut a = Vec::new();
            let mut b = Vec::new();
            encode_column(&mut a, col);
            encode_column(&mut b, &back);
            assert_eq!(a, b, "re-encoding must be byte-identical");
        }
    }

    #[test]
    fn truncation_errors_at_every_cut() {
        let mut buf = Vec::new();
        encode_column(
            &mut buf,
            &Column::from_datums(&[Datum::Str("xy".into()), Datum::Null, Datum::Str("z".into())]),
        );
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let res = decode_column(&mut r).and_then(|_| r.done());
            assert!(res.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn oversized_count_is_rejected_before_allocating() {
        // Tag says "int column with u64::MAX rows" over a 9-byte buffer.
        let mut buf = vec![TAG_INT];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert!(decode_column(&mut r).is_err());
    }

    #[test]
    fn out_of_range_string_code_is_rejected() {
        let mut buf = Vec::new();
        encode_column(&mut buf, &Column::str(vec!["a".into(), "b".into()]));
        // Flip a code (last 5 bytes are: code u32, validity tag) far out of
        // the 2-entry dictionary's range.
        let n = buf.len();
        buf[n - 3] = 0xFF;
        let mut r = ByteReader::new(&buf);
        assert!(decode_column(&mut r).is_err());
    }
}
