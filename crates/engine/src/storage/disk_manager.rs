//! Page-granular file I/O: one data file per database.
//!
//! The disk manager owns the database's single page file and hands out
//! page-sized reads and writes at `PageId * PAGE_SIZE` offsets, plus a
//! free list so dropped tables' pages are reused instead of growing the
//! file forever. All I/O goes through the buffer pool — nothing above
//! [`super::buffer_pool`] touches this directly.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::{EngineError, Result};

use super::page::{PageBuf, PAGE_SIZE};

/// Identifier of one fixed-size page in the database's page file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

struct DiskInner {
    file: File,
    /// High-water mark: pages `0..next` have been allocated at least once.
    next: u64,
    /// Allocated-then-freed pages, reused LIFO.
    free: Vec<PageId>,
}

/// Page-granular read/write over one file per database.
pub struct DiskManager {
    inner: Mutex<DiskInner>,
    path: PathBuf,
}

impl DiskManager {
    /// Create (truncating any previous contents) the page file at `path`.
    /// The file is ephemeral working storage: committed state is always
    /// recoverable from the WAL, so open always starts from a clean file.
    pub fn create(path: &Path) -> Result<DiskManager> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            inner: Mutex::new(DiskInner {
                file,
                next: 0,
                free: Vec::new(),
            }),
            path: path.to_path_buf(),
        })
    }

    /// Path of the page file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Allocate a page id (reusing freed pages first).
    pub fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        if let Some(pid) = inner.free.pop() {
            return pid;
        }
        let pid = PageId(inner.next);
        inner.next += 1;
        pid
    }

    /// Return a page to the free list.
    pub fn free(&self, pid: PageId) {
        self.inner.lock().free.push(pid);
    }

    /// Read one page into `buf`. A page allocated but never written reads
    /// back as zeros (the file may simply be shorter than its offset).
    pub fn read_page(&self, pid: PageId, buf: &mut PageBuf) -> Result<()> {
        let mut inner = self.inner.lock();
        if pid.0 >= inner.next {
            return Err(EngineError::Other(format!(
                "read of unallocated page {}",
                pid.0
            )));
        }
        inner.file.seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))?;
        let mut filled = 0;
        while filled < PAGE_SIZE {
            match inner.file.read(&mut buf[filled..])? {
                0 => break, // hole past EOF: rest stays zero
                n => filled += n,
            }
        }
        buf[filled..].fill(0);
        Ok(())
    }

    /// Write one page.
    pub fn write_page(&self, pid: PageId, buf: &PageBuf) -> Result<()> {
        let mut inner = self.inner.lock();
        if pid.0 >= inner.next {
            return Err(EngineError::Other(format!(
                "write of unallocated page {}",
                pid.0
            )));
        }
        inner.file.seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))?;
        inner.file.write_all(buf)?;
        Ok(())
    }

    /// fsync the page file.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }

    /// Pages ever allocated (high-water mark).
    pub fn pages_allocated(&self) -> u64 {
        self.inner.lock().next
    }

    /// Pages currently on the free list.
    pub fn pages_free(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Bytes the page file addresses (high-water mark × page size).
    pub fn bytes_on_disk(&self) -> u64 {
        self.pages_allocated() * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jb_disk_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("data.jbp")
    }

    #[test]
    fn write_read_roundtrip_and_reuse() {
        let dm = DiskManager::create(&tmp("rt")).unwrap();
        let a = dm.allocate();
        let b = dm.allocate();
        assert_ne!(a, b);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(b, &page).unwrap();
        let mut back = [1u8; PAGE_SIZE];
        dm.read_page(b, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
        // Page `a` was never written: reads back as zeros.
        dm.read_page(a, &mut back).unwrap();
        assert!(back.iter().all(|&x| x == 0));
        // Freed pages are reused before the file grows.
        dm.free(a);
        assert_eq!(dm.allocate(), a);
        assert_eq!(dm.pages_allocated(), 2);
        std::fs::remove_dir_all(dm.path().parent().unwrap()).unwrap();
    }

    #[test]
    fn unallocated_access_is_rejected() {
        let dm = DiskManager::create(&tmp("bounds")).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(dm.read_page(PageId(0), &mut buf).is_err());
        assert!(dm.write_page(PageId(5), &buf).is_err());
        std::fs::remove_dir_all(dm.path().parent().unwrap()).unwrap();
    }
}
