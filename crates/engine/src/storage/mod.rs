//! Disk-backed paged storage: the out-of-core engine.
//!
//! Architecture (one database = one directory):
//!
//! * [`page`] — fixed-size pages; a column serializes (shared checked
//!   codec, same conventions as the wire protocol: `f64` by bit pattern,
//!   dict+codes strings, packed validity) into a chain of pages.
//! * [`disk_manager`] — page-granular read/write over one data file per
//!   database, with a free list.
//! * [`buffer_pool`] — capacity-bounded pin/unpin frames with dirty
//!   tracking and pluggable replacement (Clock default, LRU behind the
//!   config).
//! * [`PagedStore`] — ties them together: tables persist as page chains
//!   plus in-memory metadata ([`PagedTable`]); every scan pins pages
//!   through the pool one at a time, so a database much larger than the
//!   pool still scans with bounded memory.
//!
//! Durability is WAL-first: committed state is always recoverable by
//! replaying the write-ahead log (see [`crate::wal`]), so the page file
//! is ephemeral working storage, recreated at open. Because the page
//! codec is bit-exact (floats round-trip by bit pattern) and paging
//! changes only *where* column bytes live — never the order any scan
//! folds rows — results on a paged engine are bit-identical to the
//! in-memory engine at any pool size.

pub mod buffer_pool;
pub mod codec;
pub mod disk_manager;
pub mod page;

use std::path::Path;
use std::sync::Arc;

use crate::column::Column;
use crate::datum::DataType;
use crate::error::Result;
use crate::table::{ColumnMeta, Table};

pub use buffer_pool::{BufferPool, BufferPoolStats, PageGuard, Replacement};
pub use disk_manager::{DiskManager, PageId};
pub use page::{PAGE_CAPACITY, PAGE_HEADER_BYTES, PAGE_SIZE};

use codec::ByteReader;
use page::PageBuf;

/// A column stored as a chain of pages (metadata only — the bytes live
/// in the page file / buffer pool).
#[derive(Debug, Clone)]
pub struct PagedColumn {
    /// The page chain, in order.
    pub pages: Vec<PageId>,
    /// Exact encoded byte length across the chain.
    pub bytes: u64,
    /// Row count (schema lookups without I/O).
    pub rows: usize,
    /// Data type (schema lookups without I/O).
    pub dtype: DataType,
}

/// A table stored as paged columns plus in-memory schema.
#[derive(Debug, Clone)]
pub struct PagedTable {
    /// Column metadata (names/qualifiers), as for an in-memory table.
    pub meta: Vec<ColumnMeta>,
    /// Row count.
    pub rows: usize,
    /// One paged representation per column.
    pub columns: Vec<PagedColumn>,
}

impl PagedTable {
    /// Total pages across all column chains.
    pub fn num_pages(&self) -> usize {
        self.columns.iter().map(|c| c.pages.len()).sum()
    }

    /// On-disk footprint in bytes (pages × page size).
    pub fn byte_size(&self) -> usize {
        self.num_pages() * PAGE_SIZE
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.meta
            .iter()
            .position(|m| m.name.eq_ignore_ascii_case(name))
    }
}

/// The per-database paged storage engine: disk manager + buffer pool.
pub struct PagedStore {
    disk: Arc<DiskManager>,
    pool: BufferPool,
}

impl PagedStore {
    /// Open the store rooted at directory `dir` (created if missing; the
    /// page file `data.jbp` inside is truncated — committed state comes
    /// from WAL replay, not from stale pages).
    pub fn open(dir: &Path, pool_pages: usize, strategy: Replacement) -> Result<PagedStore> {
        std::fs::create_dir_all(dir)?;
        let disk = Arc::new(DiskManager::create(&dir.join("data.jbp"))?);
        let pool = BufferPool::new(Arc::clone(&disk), pool_pages, strategy);
        Ok(PagedStore { disk, pool })
    }

    /// The buffer pool (stats, capacity).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The disk manager (allocation stats).
    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    /// Buffer-pool counters.
    pub fn stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// Write one column out as a fresh page chain. Only one page is
    /// pinned at a time, so this works at any pool size.
    pub fn store_column(&self, col: &Column) -> Result<PagedColumn> {
        let mut bytes = Vec::with_capacity(col.byte_size() + 64);
        codec::encode_column(&mut bytes, col);
        let chunks: Vec<&[u8]> = if bytes.is_empty() {
            vec![&[]]
        } else {
            bytes.chunks(PAGE_CAPACITY).collect()
        };
        let mut pages = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let (pid, guard) = self.pool.new_page()?;
            guard.write(|p| {
                page::write_header(p, i == 0, chunk.len());
                p[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + chunk.len()].copy_from_slice(chunk);
            });
            pages.push(pid);
        }
        Ok(PagedColumn {
            pages,
            bytes: bytes.len() as u64,
            rows: col.len(),
            dtype: col.dtype(),
        })
    }

    /// Read one column back, pinning its pages through the pool one at a
    /// time and decoding with the checked codec.
    pub fn load_column(&self, pc: &PagedColumn) -> Result<Column> {
        let mut bytes = Vec::with_capacity(pc.bytes as usize);
        for (i, &pid) in pc.pages.iter().enumerate() {
            let guard = self.pool.fetch(pid)?;
            guard.read(|p: &PageBuf| -> Result<()> {
                let len = page::read_header(p, i == 0)?;
                bytes.extend_from_slice(&p[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + len]);
                Ok(())
            })?;
        }
        if bytes.len() as u64 != pc.bytes {
            return Err(codec::corrupt("page chain length mismatch"));
        }
        let mut r = ByteReader::new(&bytes);
        let col = codec::decode_column(&mut r)?;
        r.done()?;
        if col.len() != pc.rows {
            return Err(codec::corrupt("row count mismatch"));
        }
        Ok(col)
    }

    /// Write a whole table out.
    pub fn store_table(&self, table: &Table) -> Result<PagedTable> {
        let mut columns = Vec::with_capacity(table.columns.len());
        for col in &table.columns {
            columns.push(self.store_column(col)?);
        }
        Ok(PagedTable {
            meta: table.meta.clone(),
            rows: table.num_rows(),
            columns,
        })
    }

    /// Materialize a whole table (a scan snapshot).
    pub fn load_table(&self, pt: &PagedTable) -> Result<Table> {
        let mut t = Table::new();
        for (m, pc) in pt.meta.iter().zip(&pt.columns) {
            t.push_column(m.clone(), self.load_column(pc)?);
        }
        Ok(t)
    }

    /// Return one column's pages to the free list.
    pub fn free_column(&self, pc: &PagedColumn) -> Result<()> {
        for &pid in &pc.pages {
            self.pool.free_page(pid)?;
        }
        Ok(())
    }

    /// Return a whole table's pages to the free list.
    pub fn free_table(&self, pt: &PagedTable) -> Result<()> {
        for pc in &pt.columns {
            self.free_column(pc)?;
        }
        Ok(())
    }

    /// Write every dirty frame back and fsync the page file.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    fn store(name: &str, pool_pages: usize) -> PagedStore {
        let dir = std::env::temp_dir().join(format!("jb_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PagedStore::open(&dir, pool_pages, Replacement::Clock).unwrap()
    }

    #[test]
    fn table_roundtrip_through_a_tiny_pool() {
        let s = store("tiny", 2);
        let t = Table::from_columns(vec![
            ("a", Column::int((0..5000).collect())),
            (
                "y",
                Column::float((0..5000).map(|i| i as f64 * 0.25).collect()),
            ),
            (
                "s",
                Column::str((0..5000).map(|i| format!("v{}", i % 7)).collect()),
            ),
        ]);
        let pt = s.store_table(&t).unwrap();
        assert!(pt.num_pages() > 2 * s.pool().capacity(), "must not fit");
        let back = s.load_table(&pt).unwrap();
        assert_eq!(back, t, "bit-exact through a 2-page pool");
        assert!(s.stats().evictions > 0, "the pool actually thrashed");
    }

    #[test]
    fn free_reclaims_pages() {
        let s = store("reclaim", 8);
        let t = Table::from_columns(vec![("a", Column::int((0..4000).collect()))]);
        let pt = s.store_table(&t).unwrap();
        let hw = s.disk().pages_allocated();
        s.free_table(&pt).unwrap();
        let pt2 = s.store_table(&t).unwrap();
        assert_eq!(
            s.disk().pages_allocated(),
            hw,
            "second table reuses the freed pages"
        );
        assert_eq!(s.load_table(&pt2).unwrap(), t);
    }

    #[test]
    fn null_heavy_columns_roundtrip() {
        let s = store("nulls", 3);
        let col = Column::from_datums(
            &(0..3000)
                .map(|i| {
                    if i % 3 == 0 {
                        Datum::Null
                    } else {
                        Datum::Float(i as f64)
                    }
                })
                .collect::<Vec<_>>(),
        );
        let pc = s.store_column(&col).unwrap();
        assert_eq!(s.load_column(&pc).unwrap(), col);
    }
}
