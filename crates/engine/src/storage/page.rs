//! Fixed-size pages: the unit of disk I/O and buffer-pool residency.
//!
//! A column is serialized with the shared checked codec
//! ([`super::codec`]) into a flat byte string, then split across
//! fixed-size pages. Each page carries an 8-byte header — magic, flags
//! (bit 0 marks the first page of a chain), and the payload length — so
//! a reader can validate a chain page by page without trusting catalog
//! metadata. Decoding is fully checked end to end: header validation
//! here, then the codec's bounds/count checks, so truncated or
//! bit-flipped pages error instead of panicking or over-allocating.

use crate::column::Column;
use crate::error::Result;

use super::codec::{self, ByteReader};

/// Page size in bytes (header included). 4 KiB matches the common DBMS
/// and filesystem block size.
pub const PAGE_SIZE: usize = 4096;

/// Header bytes at the start of every page:
/// `magic u16 LE | flags u8 | reserved u8 | payload_len u32 LE`.
pub const PAGE_HEADER_BYTES: usize = 8;

/// Payload bytes a page can carry.
pub const PAGE_CAPACITY: usize = PAGE_SIZE - PAGE_HEADER_BYTES;

/// `"JP"` — JoinBoost page.
const PAGE_MAGIC: u16 = 0x4A50;

/// Flag bit: this page starts a column chain.
const FLAG_FIRST: u8 = 1;

/// One page-sized buffer.
pub type PageBuf = [u8; PAGE_SIZE];

/// Write a page header in place (zero-fills nothing else).
pub fn write_header(page: &mut PageBuf, first: bool, payload_len: usize) {
    debug_assert!(payload_len <= PAGE_CAPACITY);
    page[0..2].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    page[2] = if first { FLAG_FIRST } else { 0 };
    page[3] = 0;
    page[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Validate a page header and return the payload length. `expect_first`
/// asserts the chain-position flag, so a chain stitched from the wrong
/// pages (or a corrupted header) is rejected.
pub fn read_header(page: &PageBuf, expect_first: bool) -> Result<usize> {
    let magic = u16::from_le_bytes(page[0..2].try_into().expect("2 bytes"));
    if magic != PAGE_MAGIC {
        return Err(codec::corrupt("bad page magic"));
    }
    let first = page[2] & FLAG_FIRST != 0;
    if first != expect_first {
        return Err(codec::corrupt("page chain order"));
    }
    let len = u32::from_le_bytes(page[4..8].try_into().expect("4 bytes")) as usize;
    if len > PAGE_CAPACITY {
        return Err(codec::corrupt("page payload length"));
    }
    Ok(len)
}

/// Split a byte string into pages (at least one, even when empty). Every
/// page except the last is full — [`unpaginate`] enforces this, so a
/// chain missing an interior page cannot silently concatenate.
pub fn paginate(bytes: &[u8]) -> Vec<Box<PageBuf>> {
    let mut chunks: Vec<&[u8]> = bytes.chunks(PAGE_CAPACITY).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let mut page: Box<PageBuf> = Box::new([0u8; PAGE_SIZE]);
            write_header(&mut page, i == 0, chunk.len());
            page[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + chunk.len()].copy_from_slice(chunk);
            page
        })
        .collect()
}

/// Reassemble the byte string from a page chain, validating every header.
pub fn unpaginate(pages: &[&PageBuf]) -> Result<Vec<u8>> {
    if pages.is_empty() {
        return Err(codec::corrupt("empty page chain"));
    }
    let mut out = Vec::with_capacity(pages.len() * PAGE_CAPACITY);
    for (i, page) in pages.iter().enumerate() {
        let len = read_header(page, i == 0)?;
        if i + 1 < pages.len() && len != PAGE_CAPACITY {
            return Err(codec::corrupt("short interior page"));
        }
        out.extend_from_slice(&page[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + len]);
    }
    Ok(out)
}

/// Encode a column into a fresh page chain.
pub fn encode_column_pages(col: &Column) -> Vec<Box<PageBuf>> {
    let mut bytes = Vec::with_capacity(col.byte_size() + 64);
    codec::encode_column(&mut bytes, col);
    paginate(&bytes)
}

/// Decode a column from a page chain (checked end to end; the whole
/// chain must be consumed exactly).
pub fn decode_column_pages(pages: &[&PageBuf]) -> Result<Column> {
    let bytes = unpaginate(pages)?;
    let mut r = ByteReader::new(&bytes);
    let col = codec::decode_column(&mut r)?;
    r.done()?;
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_page_roundtrip() {
        // ~24 KB of floats spans several pages.
        let col = Column::float((0..3000).map(|i| i as f64 * 0.1).collect());
        let pages = encode_column_pages(&col);
        assert!(pages.len() > 1, "must actually span pages");
        let refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        let back = decode_column_pages(&refs).unwrap();
        assert_eq!(back, col);
    }

    #[test]
    fn missing_interior_page_is_rejected() {
        let col = Column::int((0..3000).collect());
        let pages = encode_column_pages(&col);
        let mut refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        refs.remove(1);
        assert!(decode_column_pages(&refs).is_err());
    }

    #[test]
    fn reordered_chain_is_rejected() {
        let col = Column::int((0..3000).collect());
        let pages = encode_column_pages(&col);
        let mut refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        refs.swap(0, 1);
        assert!(decode_column_pages(&refs).is_err());
    }
}
