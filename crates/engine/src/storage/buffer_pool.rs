//! Capacity-bounded buffer pool: pinned frames over the disk manager.
//!
//! Every page access goes through [`BufferPool::fetch`], which pins the
//! page into one of a fixed number of frames (reading it from disk on a
//! miss, evicting an unpinned victim when full) and returns a
//! [`PageGuard`] that unpins on drop. Pinned frames are never evicted;
//! dirty frames are written back before their frame is reused.
//! Replacement is pluggable: Clock (second chance) by default, true LRU
//! behind [`Replacement::Lru`].
//!
//! Lock discipline: the pool's metadata (frame table, page map,
//! replacement state, stats) lives under one mutex; each frame's byte
//! buffer has its own mutex. The pool mutex is never acquired while a
//! frame buffer is held, and a frame buffer is only locked either under
//! the pool mutex (load/evict, pin count zero — uncontended) or through
//! a guard whose pin keeps the frame from being recycled.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{EngineError, Result};

use super::disk_manager::{DiskManager, PageId};
use super::page::{PageBuf, PAGE_SIZE};

/// Buffer-pool replacement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Clock (second chance): the default — near-LRU at O(1) per hit.
    #[default]
    Clock,
    /// True least-recently-used (per-access timestamp scan on eviction).
    Lru,
}

/// Observable pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Fetches answered from a resident frame.
    pub hits: u64,
    /// Fetches (and fresh-page allocations) that were not resident.
    pub misses: u64,
    /// Resident pages displaced to make room.
    pub evictions: u64,
    /// Bytes of dirty pages written back to the data file (eviction
    /// write-backs and explicit flushes — the pool's measure of spill I/O).
    pub spilled_bytes: u64,
}

#[derive(Clone, Copy)]
struct FrameMeta {
    page: Option<PageId>,
    pins: u32,
    dirty: bool,
    /// Clock reference bit.
    referenced: bool,
    /// LRU timestamp (pool-wide access tick).
    last_used: u64,
}

const EMPTY_FRAME: FrameMeta = FrameMeta {
    page: None,
    pins: 0,
    dirty: false,
    referenced: false,
    last_used: 0,
};

struct PoolInner {
    frames: Vec<FrameMeta>,
    map: HashMap<PageId, usize>,
    hand: usize,
    tick: u64,
    stats: BufferPoolStats,
}

/// Pin/unpin buffer pool over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    strategy: Replacement,
    /// Frame payloads; the Vec itself is immutable after construction so
    /// guards can hold an `Arc` to their frame's buffer without touching
    /// the pool mutex.
    data: Vec<Arc<Mutex<Box<PageBuf>>>>,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// A pool of `capacity` frames (minimum 1) over `disk`.
    pub fn new(disk: Arc<DiskManager>, capacity: usize, strategy: Replacement) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            disk,
            strategy,
            data: (0..capacity)
                .map(|_| Arc::new(Mutex::new(Box::new([0u8; PAGE_SIZE]))))
                .collect(),
            inner: Mutex::new(PoolInner {
                frames: vec![EMPTY_FRAME; capacity],
                map: HashMap::new(),
                hand: 0,
                tick: 0,
                stats: BufferPoolStats::default(),
            }),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> BufferPoolStats {
        self.inner.lock().stats
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferPoolStats::default();
    }

    /// Pin `pid` into a frame (reading from disk on a miss) and return
    /// its guard. Errors if every frame is pinned.
    pub fn fetch(&self, pid: PageId) -> Result<PageGuard<'_>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&slot) = inner.map.get(&pid) {
            let f = &mut inner.frames[slot];
            f.pins += 1;
            f.referenced = true;
            f.last_used = tick;
            inner.stats.hits += 1;
            return Ok(self.guard(slot));
        }
        inner.stats.misses += 1;
        let slot = self.take_slot(&mut inner)?;
        {
            // Pin count is zero and the page is unmapped, so this lock is
            // uncontended (only guards lock frame buffers otherwise).
            let mut buf = self.data[slot].lock();
            self.disk.read_page(pid, &mut buf)?;
        }
        inner.map.insert(pid, slot);
        inner.frames[slot] = FrameMeta {
            page: Some(pid),
            pins: 1,
            dirty: false,
            referenced: true,
            last_used: tick,
        };
        Ok(self.guard(slot))
    }

    /// Allocate a fresh page on disk and pin it, zero-filled and dirty
    /// (it will be written back on eviction or flush). Counts as a miss.
    pub fn new_page(&self) -> Result<(PageId, PageGuard<'_>)> {
        let pid = self.disk.allocate();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.stats.misses += 1;
        let slot = match self.take_slot(&mut inner) {
            Ok(s) => s,
            Err(e) => {
                self.disk.free(pid);
                return Err(e);
            }
        };
        self.data[slot].lock().fill(0);
        inner.map.insert(pid, slot);
        inner.frames[slot] = FrameMeta {
            page: Some(pid),
            pins: 1,
            dirty: true,
            referenced: true,
            last_used: tick,
        };
        Ok((pid, self.guard(slot)))
    }

    /// Drop `pid` from the pool (it must be unpinned) and return it to
    /// the disk manager's free list. Freed pages are never written back.
    pub fn free_page(&self, pid: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.map.remove(&pid) {
            if inner.frames[slot].pins > 0 {
                inner.map.insert(pid, slot);
                return Err(EngineError::Other(format!(
                    "cannot free pinned page {}",
                    pid.0
                )));
            }
            inner.frames[slot] = EMPTY_FRAME;
        }
        self.disk.free(pid);
        Ok(())
    }

    /// Write every dirty frame back and fsync the page file.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for slot in 0..self.data.len() {
            let f = inner.frames[slot];
            if let (Some(pid), true) = (f.page, f.dirty) {
                let buf = self.data[slot].lock();
                self.disk.write_page(pid, &buf)?;
                drop(buf);
                inner.frames[slot].dirty = false;
                inner.stats.spilled_bytes += PAGE_SIZE as u64;
            }
        }
        drop(inner);
        self.disk.sync()
    }

    fn guard(&self, slot: usize) -> PageGuard<'_> {
        PageGuard {
            pool: self,
            slot,
            data: Arc::clone(&self.data[slot]),
        }
    }

    /// Find a frame to (re)use: an empty one, else evict an unpinned
    /// victim per the configured strategy, writing it back if dirty.
    fn take_slot(&self, inner: &mut PoolInner) -> Result<usize> {
        if let Some(slot) = inner.frames.iter().position(|f| f.page.is_none()) {
            return Ok(slot);
        }
        let victim = match self.strategy {
            Replacement::Clock => self.clock_victim(inner),
            Replacement::Lru => self.lru_victim(inner),
        };
        let Some(slot) = victim else {
            return Err(EngineError::Other(format!(
                "buffer pool exhausted: all {} frames pinned",
                self.data.len()
            )));
        };
        let f = inner.frames[slot];
        let pid = f.page.expect("victim frame is occupied");
        if f.dirty {
            let buf = self.data[slot].lock();
            self.disk.write_page(pid, &buf)?;
            drop(buf);
            inner.stats.spilled_bytes += PAGE_SIZE as u64;
        }
        inner.map.remove(&pid);
        inner.frames[slot] = EMPTY_FRAME;
        inner.stats.evictions += 1;
        Ok(slot)
    }

    /// Clock sweep: skip pinned frames, give referenced frames a second
    /// chance, evict the first unreferenced unpinned frame.
    fn clock_victim(&self, inner: &mut PoolInner) -> Option<usize> {
        let n = self.data.len();
        for _ in 0..2 * n {
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let f = &mut inner.frames[slot];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(slot);
        }
        None
    }

    /// True LRU: the unpinned frame with the oldest access tick.
    fn lru_victim(&self, inner: &mut PoolInner) -> Option<usize> {
        inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(slot, _)| slot)
    }
}

/// A pinned page. Dropping the guard unpins the frame; reads and writes
/// go through closures so the frame buffer's lock is scoped.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    slot: usize,
    data: Arc<Mutex<Box<PageBuf>>>,
}

impl PageGuard<'_> {
    /// Read the page bytes.
    pub fn read<R>(&self, f: impl FnOnce(&PageBuf) -> R) -> R {
        let buf = self.data.lock();
        f(&buf)
    }

    /// Mutate the page bytes, marking the frame dirty.
    pub fn write<R>(&self, f: impl FnOnce(&mut PageBuf) -> R) -> R {
        self.pool.inner.lock().frames[self.slot].dirty = true;
        let mut buf = self.data.lock();
        f(&mut buf)
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        let f = &mut self.pool.inner.lock().frames[self.slot];
        debug_assert!(f.pins > 0, "unpin without pin");
        f.pins = f.pins.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(name: &str, capacity: usize, strategy: Replacement) -> BufferPool {
        let dir = std::env::temp_dir().join(format!("jb_pool_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let disk = Arc::new(DiskManager::create(&dir.join("data.jbp")).unwrap());
        BufferPool::new(disk, capacity, strategy)
    }

    /// Allocate `n` pages, each stamped with its index, and unpin them.
    fn seed_pages(pool: &BufferPool, n: usize) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let (pid, g) = pool.new_page().unwrap();
                g.write(|p| p[0] = i as u8);
                pid
            })
            .collect()
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let pool = pool("cap", 4, Replacement::Clock);
        let pids = seed_pages(&pool, 16);
        assert!(pool.resident() <= 4);
        for (i, &pid) in pids.iter().enumerate() {
            let g = pool.fetch(pid).unwrap();
            assert_eq!(g.read(|p| p[0]), i as u8, "page {i} content survived");
            drop(g);
            assert!(pool.resident() <= 4, "after fetch {i}");
        }
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = pool("pin", 2, Replacement::Clock);
        let pids = seed_pages(&pool, 2);
        let g0 = pool.fetch(pids[0]).unwrap();
        let g1 = pool.fetch(pids[1]).unwrap();
        // Both frames pinned: making room must refuse, not evict.
        let err = match pool.new_page() {
            Err(e) => e,
            Ok(_) => panic!("new_page succeeded with every frame pinned"),
        };
        assert!(err.to_string().contains("pinned"), "{err}");
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!(g0.read(|p| p[0]), 0);
        assert_eq!(g1.read(|p| p[0]), 1);
        drop(g1);
        // One frame unpinned now; the still-pinned page must survive the
        // eviction that makes room.
        let (_, g2) = pool.new_page().unwrap();
        g2.write(|p| p[0] = 9);
        assert_eq!(pool.stats().evictions, 1, "exactly the unpinned frame");
        assert_eq!(g0.read(|p| p[0]), 0, "pinned page untouched");
        drop(g2);
        let s = pool.stats();
        let g1 = pool.fetch(pids[1]).unwrap();
        assert_eq!(
            pool.stats().misses,
            s.misses + 1,
            "unpinned page was victim"
        );
        assert_eq!(g1.read(|p| p[0]), 1, "evicted dirty page reloads intact");
    }

    #[test]
    fn clock_gives_second_chances_in_hand_order() {
        let pool = pool("clock", 3, Replacement::Clock);
        let pids = seed_pages(&pool, 3); // slots 0,1,2, all referenced
                                         // First eviction sweeps: clears all three reference bits, then
                                         // takes slot 0 on the second pass.
        let extra = seed_pages(&pool, 1);
        assert_eq!(pool.stats().evictions, 1);
        {
            let mut s = pool.stats();
            let _ = pool.fetch(pids[1]).unwrap(); // still resident
            let _ = pool.fetch(pids[2]).unwrap(); // still resident
            assert_eq!(pool.stats().hits, s.hits + 2, "pages 1,2 survived");
            s = pool.stats();
            let _ = pool.fetch(pids[0]).unwrap(); // the victim
            assert_eq!(pool.stats().misses, s.misses + 1, "page 0 was evicted");
        }
        // The reload's own eviction swept every reference bit again, so
        // the next eviction takes the first unreferenced frame after the
        // hand — not the extra page, whose bit the sweep just cleared but
        // which the hand has already passed.
        let _ = seed_pages(&pool, 1);
        let s = pool.stats();
        let _ = pool.fetch(extra[0]).unwrap();
        assert_eq!(pool.stats().hits, s.hits + 1, "extra page survived");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = pool("lru", 3, Replacement::Lru);
        let pids = seed_pages(&pool, 3);
        let _ = pool.fetch(pids[0]).unwrap(); // 0 is now most recent
        let _ = seed_pages(&pool, 1); // evicts 1 (oldest tick)
        let s = pool.stats();
        let _ = pool.fetch(pids[0]).unwrap();
        let _ = pool.fetch(pids[2]).unwrap();
        assert_eq!(pool.stats().hits, s.hits + 2, "0 and 2 stayed resident");
        let s = pool.stats();
        let _ = pool.fetch(pids[1]).unwrap();
        assert_eq!(pool.stats().misses, s.misses + 1, "1 was the LRU victim");
    }

    #[test]
    fn stats_match_scripted_access_pattern() {
        let pool = pool("stats", 2, Replacement::Clock);
        // new_page a, b: two misses, no eviction (empty frames).
        let pids = seed_pages(&pool, 2);
        assert_eq!(
            pool.stats(),
            BufferPoolStats {
                hits: 0,
                misses: 2,
                evictions: 0,
                spilled_bytes: 0
            }
        );
        // new_page c: miss; evicts a dirty page — one write-back.
        let c = seed_pages(&pool, 1)[0];
        assert_eq!(
            pool.stats(),
            BufferPoolStats {
                hits: 0,
                misses: 3,
                evictions: 1,
                spilled_bytes: PAGE_SIZE as u64
            }
        );
        // fetch c: hit. fetch a: miss, evicts another dirty page.
        let _ = pool.fetch(c).unwrap();
        let _ = pool.fetch(pids[0]).unwrap();
        assert_eq!(
            pool.stats(),
            BufferPoolStats {
                hits: 1,
                misses: 4,
                evictions: 2,
                spilled_bytes: 2 * PAGE_SIZE as u64
            }
        );
        // fetch a again: hit. Clean page: a future eviction of it spills
        // nothing further.
        let _ = pool.fetch(pids[0]).unwrap();
        let st = pool.stats();
        assert_eq!((st.hits, st.misses), (2, 4));
        // flush_all writes the remaining dirty frame (c) exactly once.
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().spilled_bytes, 3 * PAGE_SIZE as u64);
        pool.flush_all().unwrap();
        assert_eq!(
            pool.stats().spilled_bytes,
            3 * PAGE_SIZE as u64,
            "second flush finds nothing dirty"
        );
    }

    #[test]
    fn freed_pages_leave_the_pool_and_reuse_their_id() {
        let pool = pool("free", 4, Replacement::Clock);
        let pids = seed_pages(&pool, 2);
        let g = pool.fetch(pids[0]).unwrap();
        assert!(pool.free_page(pids[0]).is_err(), "pinned page cannot free");
        drop(g);
        pool.free_page(pids[0]).unwrap();
        assert_eq!(pool.resident(), 1);
        let (reused, g) = pool.new_page().unwrap();
        assert_eq!(reused, pids[0], "free list reuses the id");
        assert_eq!(g.read(|p| p[0]), 0, "fresh page is zeroed");
    }
}
