//! Tables: named, optionally-qualified columns.

use crate::column::Column;
use crate::datum::Datum;
use crate::error::{EngineError, Result};

/// Metadata for one column of a table: an optional qualifier (the binding
/// name of the relation it came from — used for resolving `t.c`) and the
/// column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Binding name of the relation the column came from.
    pub qualifier: Option<String>,
    /// The column name.
    pub name: String,
}

impl ColumnMeta {
    /// Metadata with no qualifier.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnMeta {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Metadata qualified by a relation binding name.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnMeta {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
        }
    }
}

/// A materialized table (base table or intermediate result).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Per-column metadata, parallel to `columns`.
    pub meta: Vec<ColumnMeta>,
    /// The column data.
    pub columns: Vec<Column>,
}

impl Table {
    /// An empty table (no columns, no rows).
    pub fn new() -> Table {
        Table::default()
    }

    /// Build a table from `(name, column)` pairs; all columns must have the
    /// same length.
    pub fn from_columns(cols: Vec<(&str, Column)>) -> Table {
        let mut t = Table::new();
        for (name, col) in cols {
            t.push_column(ColumnMeta::new(name), col);
        }
        debug_assert!(t.columns.windows(2).all(|w| w[0].len() == w[1].len()));
        t
    }

    /// Append a column (must match the existing row count).
    pub fn push_column(&mut self, meta: ColumnMeta, col: Column) {
        self.meta.push(meta);
        self.columns.push(col);
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in storage order.
    pub fn column_names(&self) -> Vec<&str> {
        self.meta.iter().map(|m| m.name.as_str()).collect()
    }

    /// Resolve a (possibly qualified) column reference to its index.
    /// Unqualified names must be unambiguous; qualified lookups that miss
    /// fall back to an unqualified lookup (subqueries flatten qualifiers).
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, m) in self.meta.iter().enumerate() {
            if m.matches(qualifier, name) {
                if let Some(prev) = found {
                    // Ambiguity between identical (qualifier, name) pairs:
                    // prefer the first occurrence for join keys merged via
                    // USING, but reject genuinely ambiguous unqualified refs
                    // with distinct qualifiers.
                    if self.meta[prev].qualifier == m.qualifier {
                        continue;
                    }
                    return Err(EngineError::UnknownColumn(format!(
                        "ambiguous column {name}"
                    )));
                }
                found = Some(i);
            }
        }
        if found.is_none() && qualifier.is_some() {
            // Fall back: subquery aliases re-qualify columns.
            return self.resolve(None, name);
        }
        found.ok_or_else(|| {
            EngineError::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })
        })
    }

    /// Resolve and return one column.
    pub fn column(&self, qualifier: Option<&str>, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.resolve(qualifier, name)?])
    }

    /// Gather rows by index into a new table.
    pub fn take(&self, indices: &[u32]) -> Table {
        Table {
            meta: self.meta.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// First `n` rows (`LIMIT` without `ORDER BY`): prefix truncation,
    /// cheaper than materializing a `(0..n)` index vector for `take`.
    pub fn head(&self, n: usize) -> Table {
        Table {
            meta: self.meta.clone(),
            columns: self.columns.iter().map(|c| c.head(n)).collect(),
        }
    }

    /// Keep rows where the mask is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        Table {
            meta: self.meta.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// Row view for debugging / row-mode execution.
    pub fn row(&self, i: usize) -> Vec<Datum> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Re-qualify every column with the given binding name (applied when a
    /// base table or subquery gets an alias).
    pub fn with_qualifier(mut self, q: &str) -> Table {
        for m in &mut self.meta {
            m.qualifier = Some(q.to_string());
        }
        self
    }

    /// Strip qualifiers (result of a projection).
    pub fn unqualified(mut self) -> Table {
        for m in &mut self.meta {
            m.qualifier = None;
        }
        self
    }

    /// Rough heap size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Single-cell convenience accessor for scalar query results.
    pub fn scalar(&self) -> Result<Datum> {
        if self.num_rows() == 1 && self.num_columns() == 1 {
            Ok(self.columns[0].get(0))
        } else {
            Err(EngineError::Other(format!(
                "expected 1x1 result, got {}x{}",
                self.num_rows(),
                self.num_columns()
            )))
        }
    }

    /// f64 convenience accessor on a single-row result by column name.
    pub fn scalar_f64(&self, name: &str) -> Result<f64> {
        let c = self.column(None, name)?;
        if c.len() != 1 {
            return Err(EngineError::Other(format!(
                "expected single row for scalar {name}, got {}",
                c.len()
            )));
        }
        c.f64_at(0).ok_or_else(|| {
            EngineError::TypeMismatch(format!("scalar {name} is NULL or non-numeric"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.push_column(ColumnMeta::qualified("r", "a"), Column::int(vec![1, 2]));
        t.push_column(ColumnMeta::qualified("s", "b"), Column::int(vec![3, 4]));
        t
    }

    #[test]
    fn resolves_qualified_and_unqualified() {
        let t = sample();
        assert_eq!(t.resolve(Some("r"), "a").unwrap(), 0);
        assert_eq!(t.resolve(None, "b").unwrap(), 1);
        assert!(t.resolve(None, "zzz").is_err());
    }

    #[test]
    fn detects_ambiguity() {
        let mut t = sample();
        t.push_column(ColumnMeta::qualified("t", "a"), Column::int(vec![5, 6]));
        assert!(t.resolve(None, "a").is_err());
        assert_eq!(t.resolve(Some("t"), "a").unwrap(), 2);
    }

    #[test]
    fn qualified_falls_back_to_unqualified() {
        let mut t = Table::new();
        t.push_column(ColumnMeta::new("a"), Column::int(vec![1]));
        // After a subquery, `sub.a` should still resolve.
        assert_eq!(t.resolve(Some("sub"), "a").unwrap(), 0);
    }

    #[test]
    fn case_insensitive_resolution() {
        let t = sample();
        assert_eq!(t.resolve(Some("R"), "A").unwrap(), 0);
    }

    #[test]
    fn take_and_filter_table() {
        let t = sample();
        let t2 = t.take(&[1]);
        assert_eq!(t2.num_rows(), 1);
        assert_eq!(t2.row(0), vec![Datum::Int(2), Datum::Int(4)]);
        let t3 = t.filter(&[true, false]);
        assert_eq!(t3.num_rows(), 1);
    }

    #[test]
    fn scalar_accessors() {
        let t = Table::from_columns(vec![("x", Column::float(vec![4.5]))]);
        assert_eq!(t.scalar().unwrap(), Datum::Float(4.5));
        assert_eq!(t.scalar_f64("x").unwrap(), 4.5);
    }
}
