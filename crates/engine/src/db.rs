//! The database: catalog, configuration and statement execution.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use joinboost_sql::ast::{Expr, Statement};
use joinboost_sql::parse_statement;

use crate::checkpoint::{self, CheckpointWriter};
use crate::column::Column;
use crate::compress::{compress, decompress, CompressedColumn};
use crate::error::{EngineError, Result};
use crate::exec::Executor;
use crate::expr::{eval, eval_row, EvalContext};
use crate::interop::ExternalTable;
use crate::storage::{BufferPoolStats, PagedStore, PagedTable, Replacement};
use crate::table::{ColumnMeta, Table};
use crate::wal::{self, Wal, WalRecord};

/// Columnar vs row-oriented execution (the paper's `X-col` vs `X-row`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Whole-column vectorized evaluation.
    Columnar,
    /// Tuple-at-a-time evaluation.
    Row,
}

/// In-memory vs disk-backed storage. Disk-backed configurations pay for a
/// write-ahead log on every write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// Tables live in memory only.
    Memory,
    /// Disk-backed: writes pay for the write-ahead log.
    Disk,
}

/// Engine configuration. The named constructors correspond to the DBMS
/// backends of the paper's evaluation (Section 6.3, Figure 15).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Columnar vs row execution.
    pub exec: ExecMode,
    /// In-memory vs disk-backed storage.
    pub storage: StorageMode,
    /// Write-ahead logging of updates and created tables.
    pub wal: bool,
    /// MVCC-style versioning: updates first copy the before-image of each
    /// touched column into an undo buffer.
    pub mvcc: bool,
    /// Run-length compress stored tables; updates pay decompress+recompress.
    pub compression: bool,
    /// Whether the `SWAP COLUMN` extension is available (`D-Swap`).
    pub allow_swap: bool,
    /// Where to put the WAL file in disk mode (`None` → temp dir).
    pub wal_path: Option<PathBuf>,
    /// Worker threads for fused grouped aggregation (1 = serial). The
    /// parallel variant is *aggregate-sliced*: each worker owns whole
    /// accumulator banks and folds all rows into them in row order, so
    /// results are bit-identical to serial execution. Effective workers
    /// are capped by the number of scan-needing aggregates in the query
    /// (2-3 for the ring shapes sqlgen emits; `COUNT(*)` is answered
    /// from the grouping pass and needs no worker).
    pub agg_threads: usize,
    /// Directory of the paged (out-of-core) store. `None` keeps tables
    /// RAM-resident (the untouched fast default); `Some(dir)` stores
    /// every table as fixed-size page chains in `dir/data.jbp`, scanned
    /// through a capacity-bounded buffer pool, with commit-fsynced WAL
    /// replay restoring committed tables on reopen (crash recovery).
    pub storage_path: Option<PathBuf>,
    /// Buffer-pool capacity in pages (paged mode; minimum 1).
    pub bufferpool_pages: usize,
    /// Buffer-pool replacement strategy (paged mode).
    pub replacement: Replacement,
    /// Spill grouped-aggregation state to disk when the estimated
    /// accumulator-bank footprint exceeds this many bytes (paged mode
    /// only; the group-id space is sliced so results stay bit-identical).
    pub agg_spill_bytes: usize,
    /// Automatic checkpoint budget (paged mode only): once the WAL has
    /// grown past this many bytes, the next statement boundary snapshots
    /// the catalog into `checkpoint.jbc` and truncates the log, so the
    /// log file stays bounded by `checkpoint_bytes` plus one statement
    /// and reopening replays only the post-checkpoint suffix. `None`
    /// disables automatic checkpoints ([`Database::checkpoint`] can
    /// still be called manually).
    pub checkpoint_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::duckdb_mem()
    }
}

impl EngineConfig {
    /// `D-mem`: in-memory columnar engine, MVCC + compression, no WAL.
    pub fn duckdb_mem() -> Self {
        EngineConfig {
            exec: ExecMode::Columnar,
            storage: StorageMode::Memory,
            wal: false,
            mvcc: true,
            compression: true,
            allow_swap: false,
            wal_path: None,
            agg_threads: 1,
            storage_path: None,
            bufferpool_pages: 256,
            replacement: Replacement::Clock,
            agg_spill_bytes: 64 << 20,
            checkpoint_bytes: None,
        }
    }

    /// `D-disk`: disk-backed columnar engine (WAL on writes).
    pub fn duckdb_disk() -> Self {
        EngineConfig {
            storage: StorageMode::Disk,
            wal: true,
            ..Self::duckdb_mem()
        }
    }

    /// `X-col`: commercial column store — disk-based, aggressive
    /// compression, WAL and versioning.
    pub fn dbms_x_col() -> Self {
        EngineConfig {
            storage: StorageMode::Disk,
            wal: true,
            ..Self::duckdb_mem()
        }
    }

    /// `X-row`: commercial row store — row execution, no columnar
    /// compression, WAL and versioning.
    pub fn dbms_x_row() -> Self {
        EngineConfig {
            exec: ExecMode::Row,
            storage: StorageMode::Disk,
            wal: true,
            mvcc: true,
            compression: false,
            allow_swap: false,
            wal_path: None,
            agg_threads: 1,
            storage_path: None,
            bufferpool_pages: 256,
            replacement: Replacement::Clock,
            agg_spill_bytes: 64 << 20,
            checkpoint_bytes: None,
        }
    }

    /// `D-Swap`: in-memory columnar engine with the column-swap extension.
    pub fn d_swap() -> Self {
        EngineConfig {
            allow_swap: true,
            ..Self::duckdb_mem()
        }
    }

    /// Paged (out-of-core) engine rooted at `dir`: tables live as page
    /// chains on disk behind a pinning buffer pool, every write statement
    /// is WAL-logged and commit-fsynced, and reopening the same directory
    /// recovers all committed tables by replaying the log. Results are
    /// bit-identical to [`EngineConfig::duckdb_mem`] at any pool size.
    /// Compression and MVCC are off (the WAL's full images are the
    /// versioning story here); tune `bufferpool_pages`, `replacement`
    /// and `agg_spill_bytes` with struct-update syntax.
    pub fn paged(dir: impl Into<PathBuf>) -> Self {
        EngineConfig {
            storage: StorageMode::Disk,
            wal: true,
            mvcc: false,
            compression: false,
            storage_path: Some(dir.into()),
            checkpoint_bytes: Some(64 << 20),
            ..Self::duckdb_mem()
        }
    }
}

/// Execution statistics (observable costs of the DBMS mechanisms).
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    /// `SELECT`/`CREATE TABLE AS` queries executed.
    pub queries: u64,
    /// Total statements executed (queries included).
    pub statements: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes of MVCC before-images copied into the undo buffer.
    pub undo_bytes: u64,
    /// Number of MVCC before-images recorded.
    pub undo_versions: u64,
    /// Bytes deep-copied from external (dataframe) storage on scans.
    pub interop_bytes_copied: u64,
    /// Bytes written through the compression path.
    pub compressed_bytes_written: u64,
    /// `SWAP COLUMN` statements executed.
    pub swaps: u64,
    /// Checkpoints taken (manual + automatic).
    pub checkpoints: u64,
    /// Bytes written into checkpoint snapshots.
    pub checkpoint_bytes_written: u64,
}

enum Stored {
    Plain(Arc<Table>),
    Compressed(Arc<CompressedTable>),
    External(Arc<ExternalTable>),
    /// Page chains in the paged store (out-of-core mode): only metadata
    /// lives here; scans pin the pages through the buffer pool.
    Paged(PagedTable),
}

struct CompressedTable {
    meta: Vec<ColumnMeta>,
    columns: Vec<CompressedColumn>,
}

/// Cap on retained MVCC before-images (older versions are garbage
/// collected, as a real MVCC engine eventually does).
const UNDO_CAP_BYTES: usize = 64 << 20;

/// An embedded SQL database.
pub struct Database {
    config: EngineConfig,
    catalog: RwLock<HashMap<String, Stored>>,
    wal: Mutex<Wal>,
    undo: Mutex<UndoLog>,
    stats: Mutex<DbStats>,
    /// The paged store (out-of-core mode only).
    storage: Option<PagedStore>,
    /// Checkpoint vs writer exclusion: every write statement holds a read
    /// guard while it logs + applies; a checkpoint takes the write guard,
    /// so its snapshot always sits on a statement boundary.
    write_gate: RwLock<()>,
}

#[derive(Default)]
struct UndoLog {
    versions: Vec<(String, Column)>,
    bytes: usize,
}

impl Database {
    /// Open a database with the given configuration, panicking on storage
    /// errors — only possible in paged mode; use [`Database::open`] to
    /// handle them.
    pub fn new(config: EngineConfig) -> Database {
        Database::open(config).unwrap_or_else(|e| panic!("failed to open database: {e}"))
    }

    /// Open a database with the given configuration. For paged
    /// configurations this opens (or creates) the storage directory and
    /// replays the WAL's committed prefix, restoring every committed
    /// table — crash recovery. Non-paged configurations cannot fail.
    pub fn open(config: EngineConfig) -> Result<Database> {
        if config.storage_path.is_some() {
            return Self::open_paged(config);
        }
        let wal = if config.wal {
            let path = config.wal_path.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!(
                    "jb_wal_{}_{:x}.log",
                    std::process::id(),
                    &config as *const _ as usize
                ))
            });
            Wal::open(&path).unwrap_or_else(|_| Wal::disabled())
        } else {
            Wal::disabled()
        };
        Ok(Database {
            config,
            catalog: RwLock::new(HashMap::new()),
            wal: Mutex::new(wal),
            undo: Mutex::new(UndoLog::default()),
            stats: Mutex::new(DbStats::default()),
            storage: None,
            write_gate: RwLock::new(()),
        })
    }

    /// Open the paged engine: create the directory, load the latest
    /// checkpoint (if any), replay the WAL's committed prefix on top into
    /// the (fresh) page file, then reopen the log for appending with
    /// fsync-on-commit enabled.
    fn open_paged(config: EngineConfig) -> Result<Database> {
        let dir = config.storage_path.clone().expect("paged config has a dir");
        std::fs::create_dir_all(&dir)?;
        let store = PagedStore::open(&dir, config.bufferpool_pages, config.replacement)?;
        let wal_path = dir.join("wal.log");
        let (records, committed_len, committed_records) = if wal_path.exists() {
            wal::replay(&wal_path)?
        } else {
            (Vec::new(), 0, 0)
        };
        // Start from the checkpoint snapshot, then re-apply the committed
        // statements in log order. Full after-images make this idempotent
        // (the last image of each table/column wins), which is what makes
        // the checkpoint's crash windows safe: replaying a log that still
        // contains pre-checkpoint records converges to the same state.
        let mut tables: HashMap<String, Table> = checkpoint::load(&dir)?
            .map(|snap| snap.into_iter().collect())
            .unwrap_or_default();
        for record in records {
            match record {
                WalRecord::CreateTable { name, table } => {
                    tables.insert(name.to_ascii_lowercase(), table);
                }
                WalRecord::UpdateColumn {
                    table,
                    column,
                    after,
                } => {
                    if let Some(t) = tables.get_mut(&table.to_ascii_lowercase()) {
                        if let Ok(i) = t.resolve(None, &column) {
                            t.columns[i] = after;
                        }
                    }
                }
                WalRecord::DropTable { name } => {
                    tables.remove(&name.to_ascii_lowercase());
                }
                WalRecord::Commit => {}
            }
        }
        let mut catalog = HashMap::new();
        for (name, t) in tables {
            catalog.insert(name, Stored::Paged(store.store_table(&t)?));
        }
        let mut wal = Wal::open_append(&wal_path, committed_len, committed_records)?;
        // The latent `sync = false` default would leave commit records in
        // OS buffers; the paged engine's durability contract is that a
        // committed statement survives a crash, so fsync on commit.
        wal.sync = true;
        Ok(Database {
            config,
            catalog: RwLock::new(catalog),
            wal: Mutex::new(wal),
            undo: Mutex::new(UndoLog::default()),
            stats: Mutex::new(DbStats::default()),
            storage: Some(store),
            write_gate: RwLock::new(()),
        })
    }

    /// In-memory columnar database with default (DuckDB-like) settings.
    pub fn in_memory() -> Database {
        Database::new(EngineConfig::duckdb_mem())
    }

    /// The configuration this database was opened with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the execution statistics.
    pub fn stats(&self) -> DbStats {
        let mut s = self.stats.lock().clone();
        let wal = self.wal.lock();
        s.wal_bytes = wal.bytes_logged;
        s.wal_records = wal.records;
        s
    }

    /// Zero the execution statistics (WAL counters restart too).
    pub fn reset_stats(&self) {
        *self.stats.lock() = DbStats::default();
    }

    /// Is this the paged (out-of-core) engine?
    pub fn is_paged(&self) -> bool {
        self.storage.is_some()
    }

    /// Buffer-pool counters (paged mode only).
    pub fn bufferpool_stats(&self) -> Option<BufferPoolStats> {
        self.storage.as_ref().map(PagedStore::stats)
    }

    /// Test hook: simulate a process crash — WAL bytes the OS never
    /// acknowledged as durable are discarded, exactly as a power loss
    /// would, leaving the log at its last-fsynced length. The in-memory
    /// catalog is untouched; reopen the directory to see what survived.
    pub fn simulate_crash(&self) -> Result<()> {
        self.wal.lock().simulate_crash()
    }

    /// Spill destination and budget for grouped aggregation (paged mode).
    pub(crate) fn spill_target(&self) -> Option<(&PagedStore, usize)> {
        self.storage
            .as_ref()
            .map(|s| (s, self.config.agg_spill_bytes))
    }

    /// Checkpoint the catalog (paged mode only): snapshot every table's
    /// schema and column images into `checkpoint.jbc` (written to a tmp
    /// file, fsynced, atomically renamed, directory fsynced), then
    /// truncate the WAL to empty. Concurrent write statements are
    /// excluded for the duration, so the snapshot always captures a
    /// statement boundary; reads proceed normally. A crash at any point
    /// during the checkpoint recovers from the previous one (see
    /// [`crate::checkpoint`] for the window-by-window argument).
    pub fn checkpoint(&self) -> Result<()> {
        let store = self
            .storage
            .as_ref()
            .ok_or_else(|| EngineError::Other("checkpoint requires the paged engine".into()))?;
        let dir = self
            .config
            .storage_path
            .clone()
            .expect("paged config has a dir");
        let _gate = self.write_gate.write();
        // Page-chain metadata is cheap to clone; contents cannot move under
        // the exclusive gate. Sorted order keeps snapshots deterministic.
        let entries: Vec<(String, PagedTable)> = {
            let cat = self.catalog.read();
            let mut v: Vec<(String, PagedTable)> = cat
                .iter()
                .filter_map(|(k, s)| match s {
                    Stored::Paged(pt) => Some((k.clone(), pt.clone())),
                    // External tables are deliberately non-durable (they
                    // bypass the WAL too), so they stay out of snapshots.
                    _ => None,
                })
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut writer = CheckpointWriter::create(&dir, entries.len() as u32)?;
        for (name, pt) in &entries {
            writer.add_table(name, &store.load_table(pt)?)?;
        }
        let bytes = writer.finish()?;
        // Only now — with the snapshot durably installed — is the log
        // redundant and safe to cut.
        self.wal.lock().truncate_to_empty()?;
        let mut stats = self.stats.lock();
        stats.checkpoints += 1;
        stats.checkpoint_bytes_written += bytes;
        Ok(())
    }

    /// Auto-checkpoint trigger, called after each write statement commits
    /// (and after its gate guard is released — [`Database::checkpoint`]
    /// takes the exclusive gate itself).
    fn maybe_checkpoint(&self) -> Result<()> {
        if self.storage.is_none() {
            return Ok(());
        }
        let Some(budget) = self.config.checkpoint_bytes else {
            return Ok(());
        };
        if self.wal.lock().bytes_logged >= budget {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Log a commit record for the statement just applied (paged mode:
    /// this is the fsync that makes the statement durable).
    fn wal_commit(&self) -> Result<()> {
        if self.storage.is_some() {
            self.wal.lock().log_commit()?;
        }
        Ok(())
    }

    /// Return a replaced/dropped table's pages to the free list.
    fn release(&self, old: Option<Stored>) {
        if let (Some(Stored::Paged(pt)), Some(store)) = (old, &self.storage) {
            // Best-effort: a pinned page here would be an engine bug, but
            // freeing is an optimization — leaking pages is still correct.
            let _ = store.free_table(&pt);
        }
    }

    // ---- programmatic catalog API -----------------------------------------

    /// Register a table built in Rust (bulk load).
    pub fn create_table(&self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let gate = self.write_gate.read();
        let mut cat = self.catalog.write();
        if cat.contains_key(&key) {
            return Err(EngineError::TableExists(name.to_string()));
        }
        // Paged engines WAL bulk loads too: recovery must be able to
        // rebuild every committed table from the log alone. (Non-paged
        // disk configs keep the original behavior — bulk loads bypass
        // the WAL, which only models per-statement write costs there.)
        if self.storage.is_some() && self.config.wal {
            self.wal.lock().log_create_table(name, &table)?;
        }
        let stored = self.store(table)?;
        cat.insert(key, stored);
        drop(cat);
        self.wal_commit()?;
        drop(gate);
        self.maybe_checkpoint()
    }

    /// Register a table, replacing any existing table of the same name,
    /// as a *single* WAL-logged statement. Unlike `drop_table` followed
    /// by [`Database::create_table`] — two statements, between which a
    /// crash leaves the table missing — replay of the one `CreateTable`
    /// record overwrites the old image atomically, so recovery sees
    /// either the old table or the new one, never neither. This is the
    /// primitive durable system tables (e.g. a server's job registry)
    /// are rewritten through.
    pub fn create_or_replace_table(&self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let gate = self.write_gate.read();
        if self.storage.is_some() && self.config.wal {
            self.wal.lock().log_create_table(name, &table)?;
        }
        let stored = self.store(table)?;
        let old = self.catalog.write().insert(key, stored);
        self.release(old);
        self.wal_commit()?;
        drop(gate);
        self.maybe_checkpoint()
    }

    /// Register (or replace) a table held in external dataframe storage
    /// (the `DP` backend's fact table).
    pub fn register_external(&self, name: &str, table: &Table) {
        let key = name.to_ascii_lowercase();
        self.catalog.write().insert(
            key,
            Stored::External(Arc::new(ExternalTable::from_table(table))),
        );
    }

    /// Access an external table's handle for O(1) column replacement.
    pub fn external(&self, name: &str) -> Result<Arc<ExternalTable>> {
        match self.catalog.read().get(&name.to_ascii_lowercase()) {
            Some(Stored::External(e)) => Ok(Arc::clone(e)),
            Some(_) => Err(EngineError::Other(format!("{name} is not external"))),
            None => Err(EngineError::UnknownTable(name.to_string())),
        }
    }

    /// Remove a table from the catalog.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let gate = self.write_gate.read();
        let old = self.catalog.write().remove(&key);
        if old.is_none() {
            return Err(EngineError::UnknownTable(name.to_string()));
        }
        self.release(old);
        if self.config.wal {
            self.wal.lock().log_drop_table(name)?;
        }
        self.wal_commit()?;
        drop(gate);
        self.maybe_checkpoint()
    }

    /// Does a table with this name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains_key(&name.to_ascii_lowercase())
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.catalog.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Approximate stored size of a table in bytes.
    pub fn table_byte_size(&self, name: &str) -> Result<usize> {
        match self.catalog.read().get(&name.to_ascii_lowercase()) {
            Some(Stored::Plain(t)) => Ok(t.byte_size()),
            Some(Stored::Compressed(c)) => {
                Ok(c.columns.iter().map(CompressedColumn::byte_size).sum())
            }
            Some(Stored::External(e)) => Ok(e.copy_in().0.byte_size()),
            Some(Stored::Paged(pt)) => Ok(pt.byte_size()),
            None => Err(EngineError::UnknownTable(name.to_string())),
        }
    }

    /// Column names of a table (schema lookup, no data copied).
    pub fn column_names(&self, name: &str) -> Result<Vec<String>> {
        match self.catalog.read().get(&name.to_ascii_lowercase()) {
            Some(Stored::Plain(t)) => Ok(t.meta.iter().map(|m| m.name.clone()).collect()),
            Some(Stored::Compressed(c)) => Ok(c.meta.iter().map(|m| m.name.clone()).collect()),
            Some(Stored::External(e)) => Ok(e.column_names().to_vec()),
            Some(Stored::Paged(pt)) => Ok(pt.meta.iter().map(|m| m.name.clone()).collect()),
            None => Err(EngineError::UnknownTable(name.to_string())),
        }
    }

    /// Data type of one column (schema lookup).
    pub fn column_dtype(&self, table: &str, column: &str) -> Result<crate::datum::DataType> {
        match self.catalog.read().get(&table.to_ascii_lowercase()) {
            Some(Stored::Plain(t)) => {
                let i = t.resolve(None, column)?;
                Ok(t.columns[i].dtype())
            }
            Some(Stored::Compressed(c)) => {
                let i = c
                    .meta
                    .iter()
                    .position(|m| m.name.eq_ignore_ascii_case(column))
                    .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
                Ok(c.columns[i].dtype)
            }
            Some(Stored::External(e)) => {
                let arc = e.column_arc(column)?;
                Ok(arc.dtype())
            }
            Some(Stored::Paged(pt)) => {
                let i = pt
                    .column_index(column)
                    .ok_or_else(|| EngineError::UnknownColumn(column.to_string()))?;
                Ok(pt.columns[i].dtype)
            }
            None => Err(EngineError::UnknownTable(table.to_string())),
        }
    }

    /// Number of rows in a table.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        match self.catalog.read().get(&name.to_ascii_lowercase()) {
            Some(Stored::Plain(t)) => Ok(t.num_rows()),
            Some(Stored::Compressed(c)) => Ok(c.columns.first().map_or(0, |cc| cc.len)),
            Some(Stored::External(e)) => Ok(e.num_rows()),
            Some(Stored::Paged(pt)) => Ok(pt.rows),
            None => Err(EngineError::UnknownTable(name.to_string())),
        }
    }

    /// Materialize a scan snapshot of a table (decompressing or copying in
    /// from external storage as the configuration dictates).
    pub fn snapshot(&self, name: &str) -> Result<Table> {
        let cat = self.catalog.read();
        match cat.get(&name.to_ascii_lowercase()) {
            Some(Stored::Plain(t)) => Ok((**t).clone()),
            Some(Stored::Compressed(c)) => {
                let mut t = Table::new();
                for (m, cc) in c.meta.iter().zip(&c.columns) {
                    t.push_column(m.clone(), decompress(cc));
                }
                Ok(t)
            }
            Some(Stored::External(e)) => {
                let (t, bytes) = e.copy_in();
                drop(cat);
                self.stats.lock().interop_bytes_copied += bytes as u64;
                Ok(t)
            }
            Some(Stored::Paged(pt)) => {
                // Clone the (cheap) page-chain metadata so the catalog lock
                // is released while pages are pinned through the pool.
                let pt = pt.clone();
                drop(cat);
                let store = self
                    .storage
                    .as_ref()
                    .expect("paged table without paged storage");
                store.load_table(&pt)
            }
            None => Err(EngineError::UnknownTable(name.to_string())),
        }
    }

    fn store(&self, table: Table) -> Result<Stored> {
        if let Some(store) = &self.storage {
            return Ok(Stored::Paged(store.store_table(&table)?));
        }
        if self.config.compression {
            let mut cols = Vec::with_capacity(table.columns.len());
            let mut bytes = 0usize;
            for c in &table.columns {
                let cc = compress(c);
                bytes += cc.byte_size();
                cols.push(cc);
            }
            self.stats.lock().compressed_bytes_written += bytes as u64;
            Ok(Stored::Compressed(Arc::new(CompressedTable {
                meta: table.meta,
                columns: cols,
            })))
        } else {
            Ok(Stored::Plain(Arc::new(table)))
        }
    }

    // ---- SQL entry points --------------------------------------------------

    /// Execute one SQL statement; `SELECT` returns its result, other
    /// statements return an empty table.
    pub fn execute(&self, sql: &str) -> Result<Table> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Convenience alias for `SELECT` statements.
    pub fn query(&self, sql: &str) -> Result<Table> {
        self.execute(sql)
    }

    /// Execute a pre-parsed statement.
    pub fn execute_statement(&self, stmt: &Statement) -> Result<Table> {
        self.stats.lock().statements += 1;
        match stmt {
            Statement::Select(q) => {
                self.stats.lock().queries += 1;
                Executor::new(self).query(q)
            }
            Statement::CreateTableAs {
                name,
                query,
                or_replace,
            } => {
                self.stats.lock().queries += 1;
                let result = Executor::new(self).query(query)?.unqualified();
                let key = name.to_ascii_lowercase();
                let gate = self.write_gate.read();
                {
                    let cat = self.catalog.read();
                    if cat.contains_key(&key) && !or_replace {
                        return Err(EngineError::TableExists(name.clone()));
                    }
                }
                if self.config.wal {
                    self.wal.lock().log_create_table(name, &result)?;
                }
                let stored = self.store(result)?;
                let old = self.catalog.write().insert(key, stored);
                self.release(old);
                self.wal_commit()?;
                drop(gate);
                self.maybe_checkpoint()?;
                Ok(Table::new())
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                self.update(table, assignments, where_clause.as_ref())?;
                Ok(Table::new())
            }
            Statement::DropTable { name, if_exists } => {
                if *if_exists && !self.has_table(name) {
                    return Ok(Table::new());
                }
                self.drop_table(name)?;
                Ok(Table::new())
            }
            Statement::SwapColumn {
                table_a,
                column_a,
                table_b,
                column_b,
            } => {
                self.swap_column(table_a, column_a, table_b, column_b)?;
                Ok(Table::new())
            }
        }
    }

    fn update(
        &self,
        table: &str,
        assignments: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> Result<()> {
        let gate = self.write_gate.read();
        // Snapshot pays decompression (compressed storage) or copy-in
        // (external storage); the write below pays WAL + undo + recompress.
        let current = self.snapshot(table)?;
        let n = current.num_rows();
        let executor = Executor::new(self);
        let ctx = EvalContext::new(&executor);
        let mask: Vec<bool> = match where_clause {
            Some(pred) => match self.config.exec {
                ExecMode::Columnar => {
                    let c = eval(pred, &current, &ctx)?;
                    (0..n).map(|i| c.get(i).is_truthy()).collect()
                }
                ExecMode::Row => {
                    let mut m = Vec::with_capacity(n);
                    for i in 0..n {
                        m.push(eval_row(pred, &current, i, &ctx)?.is_truthy());
                    }
                    m
                }
            },
            None => vec![true; n],
        };
        let mut updated = current.clone();
        for (col_name, expr) in assignments {
            let idx = current.resolve(None, col_name)?;
            // MVCC: copy the before-image into the undo buffer.
            if self.config.mvcc {
                let before = current.columns[idx].clone();
                let bytes = before.byte_size();
                let mut undo = self.undo.lock();
                undo.versions.push((format!("{table}.{col_name}"), before));
                undo.bytes += bytes;
                while undo.bytes > UNDO_CAP_BYTES && !undo.versions.is_empty() {
                    let (_, old) = undo.versions.remove(0);
                    undo.bytes -= old.byte_size();
                }
                let mut stats = self.stats.lock();
                stats.undo_bytes += bytes as u64;
                stats.undo_versions += 1;
            }
            let new_vals = match self.config.exec {
                ExecMode::Columnar => eval(expr, &current, &ctx)?,
                ExecMode::Row => {
                    let mut vals = Vec::with_capacity(n);
                    for i in 0..n {
                        vals.push(eval_row(expr, &current, i, &ctx)?);
                    }
                    Column::from_datums(&vals)
                }
            };
            // Merge: masked rows take the new value, others keep the old.
            let mut merged = Vec::with_capacity(n);
            let old = &current.columns[idx];
            for (i, &hit) in mask.iter().enumerate() {
                merged.push(if hit { new_vals.get(i) } else { old.get(i) });
            }
            let merged_col = Column::from_datums(&merged);
            if self.config.wal {
                self.wal
                    .lock()
                    .log_update_column(table, col_name, &merged_col)?;
            }
            updated.columns[idx] = merged_col;
        }
        let key = table.to_ascii_lowercase();
        let was_external = matches!(self.catalog.read().get(&key), Some(Stored::External(_)));
        if was_external {
            self.catalog.write().insert(
                key,
                Stored::External(Arc::new(ExternalTable::from_table(&updated))),
            );
        } else {
            let stored = self.store(updated)?;
            let old = self.catalog.write().insert(key, stored);
            self.release(old);
        }
        self.wal_commit()?;
        drop(gate);
        self.maybe_checkpoint()
    }

    fn swap_column(&self, ta: &str, ca: &str, tb: &str, cb: &str) -> Result<()> {
        if !self.config.allow_swap {
            return Err(EngineError::Other(
                "column swap is not supported by this backend configuration".into(),
            ));
        }
        let (ka, kb) = (ta.to_ascii_lowercase(), tb.to_ascii_lowercase());
        let mut cat = self.catalog.write();
        if !cat.contains_key(&ka) {
            return Err(EngineError::UnknownTable(ta.to_string()));
        }
        if !cat.contains_key(&kb) {
            return Err(EngineError::UnknownTable(tb.to_string()));
        }
        // External ⇄ external: swap Arc pointers.
        if let (Some(Stored::External(ea)), Some(Stored::External(eb))) =
            (cat.get(&ka), cat.get(&kb))
        {
            let (ea, eb) = (Arc::clone(ea), Arc::clone(eb));
            drop(cat);
            let a = ea.column_arc(ca)?;
            let b = eb.column_arc(cb)?;
            ea.replace_column(ca, (*b).clone())?;
            eb.replace_column(cb, (*a).clone())?;
            self.stats.lock().swaps += 1;
            return Ok(());
        }
        // Same-representation in-catalog swap: pull both columns out and
        // exchange them. This is a schema-level pointer move — O(1) in the
        // number of rows (Vec moves are three words).
        let col_a = take_column(cat.get_mut(&ka).expect("checked"), ca)?;
        let col_b = match take_column(cat.get_mut(&kb).expect("checked"), cb) {
            Ok(c) => c,
            Err(e) => {
                // Restore A before bailing out.
                put_column(cat.get_mut(&ka).expect("checked"), ca, col_a)?;
                return Err(e);
            }
        };
        put_column(cat.get_mut(&ka).expect("checked"), ca, col_b)?;
        put_column(cat.get_mut(&kb).expect("checked"), cb, col_a)?;
        self.stats.lock().swaps += 1;
        Ok(())
    }
}

/// Either a plain or a compressed column, moved between tables by swap.
enum AnyColumn {
    Plain(Column),
    Compressed(CompressedColumn),
}

fn take_column(stored: &mut Stored, name: &str) -> Result<AnyColumn> {
    match stored {
        Stored::Plain(t) => {
            let t = Arc::make_mut(t);
            let idx = t.resolve(None, name)?;
            // Leave a zero-length placeholder; put_column will replace it.
            let col = std::mem::replace(&mut t.columns[idx], Column::int(vec![]));
            Ok(AnyColumn::Plain(col))
        }
        Stored::Compressed(c) => {
            let c = Arc::make_mut(c);
            let idx = c
                .meta
                .iter()
                .position(|m| m.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
            let placeholder = compress(&Column::int(vec![]));
            let col = std::mem::replace(&mut c.columns[idx], placeholder);
            Ok(AnyColumn::Compressed(col))
        }
        Stored::External(e) => {
            let arc = e.column_arc(name)?;
            Ok(AnyColumn::Plain((*arc).clone()))
        }
        // Swap deliberately bypasses the WAL (it is a schema-level pointer
        // move), which is incompatible with WAL-replay recovery.
        Stored::Paged(_) => Err(EngineError::Other(
            "column swap is not supported on paged storage".into(),
        )),
    }
}

fn put_column(stored: &mut Stored, name: &str, col: AnyColumn) -> Result<()> {
    match stored {
        Stored::Plain(t) => {
            let t = Arc::make_mut(t);
            let idx = t.resolve(None, name)?;
            t.columns[idx] = match col {
                AnyColumn::Plain(c) => c,
                AnyColumn::Compressed(cc) => decompress(&cc),
            };
            Ok(())
        }
        Stored::Compressed(c) => {
            let c = Arc::make_mut(c);
            let idx = c
                .meta
                .iter()
                .position(|m| m.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
            c.columns[idx] = match col {
                AnyColumn::Compressed(cc) => cc,
                AnyColumn::Plain(p) => compress(&p),
            };
            Ok(())
        }
        Stored::External(e) => {
            let c = match col {
                AnyColumn::Plain(c) => c,
                AnyColumn::Compressed(cc) => decompress(&cc),
            };
            e.replace_column(name, c)
        }
        Stored::Paged(_) => Err(EngineError::Other(
            "column swap is not supported on paged storage".into(),
        )),
    }
}

impl Clone for CompressedTable {
    fn clone(&self) -> Self {
        CompressedTable {
            meta: self.meta.clone(),
            columns: self.columns.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    fn db_with_r() -> Database {
        let db = Database::in_memory();
        db.create_table(
            "r",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2, 2])),
                ("y", Column::float(vec![2.0, 3.0, 1.0, 2.0])),
            ]),
        )
        .unwrap();
        db
    }

    #[test]
    fn select_group_by_aggregates() {
        let db = db_with_r();
        let t = db
            .query("SELECT a, SUM(y) AS s, COUNT(*) AS c FROM r GROUP BY a ORDER BY a")
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column(None, "s").unwrap().get(0), Datum::Float(5.0));
        assert_eq!(t.column(None, "c").unwrap().get(1), Datum::Int(2));
    }

    #[test]
    fn global_aggregate_and_arithmetic_over_aggs() {
        let db = db_with_r();
        // variance = Q - S^2/C over all of r
        let t = db
            .query("SELECT SUM(y * y) - SUM(y) * SUM(y) / COUNT(*) AS v FROM r")
            .unwrap();
        let v = t.scalar_f64("v").unwrap();
        assert!((v - 2.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn create_table_as_and_reuse() {
        let db = db_with_r();
        db.execute("CREATE TABLE agg AS SELECT a, SUM(y) AS s FROM r GROUP BY a")
            .unwrap();
        let t = db.query("SELECT SUM(s) AS total FROM agg").unwrap();
        assert_eq!(t.scalar_f64("total").unwrap(), 8.0);
        assert!(db.execute("CREATE TABLE agg AS SELECT 1 AS x").is_err());
        db.execute("CREATE OR REPLACE TABLE agg AS SELECT 1 AS x")
            .unwrap();
        assert_eq!(db.row_count("agg").unwrap(), 1);
    }

    #[test]
    fn update_with_predicate() {
        let db = db_with_r();
        db.execute("UPDATE r SET y = y - 1.0 WHERE a = 1").unwrap();
        let t = db.query("SELECT SUM(y) AS s FROM r").unwrap();
        assert_eq!(t.scalar_f64("s").unwrap(), 6.0);
        let stats = db.stats();
        assert_eq!(stats.undo_versions, 1, "MVCC before-image recorded");
    }

    #[test]
    fn update_with_in_subquery() {
        let db = db_with_r();
        db.create_table("m", Table::from_columns(vec![("a", Column::int(vec![2]))]))
            .unwrap();
        db.execute("UPDATE r SET y = 0.0 WHERE a IN (SELECT a FROM m)")
            .unwrap();
        let t = db.query("SELECT SUM(y) AS s FROM r").unwrap();
        assert_eq!(t.scalar_f64("s").unwrap(), 5.0);
    }

    #[test]
    fn swap_column_requires_capability() {
        let db = db_with_r();
        db.execute("CREATE TABLE r2 AS SELECT a, y + 1.0 AS y FROM r")
            .unwrap();
        assert!(db.execute("SWAP COLUMN r.y WITH r2.y").is_err());

        let db2 = Database::new(EngineConfig::d_swap());
        db2.create_table(
            "f",
            Table::from_columns(vec![("s", Column::float(vec![1.0, 2.0]))]),
        )
        .unwrap();
        db2.create_table(
            "f2",
            Table::from_columns(vec![("s", Column::float(vec![10.0, 20.0]))]),
        )
        .unwrap();
        db2.execute("SWAP COLUMN f.s WITH f2.s").unwrap();
        assert_eq!(
            db2.query("SELECT SUM(s) AS s FROM f")
                .unwrap()
                .scalar_f64("s")
                .unwrap(),
            30.0
        );
        assert_eq!(db2.stats().swaps, 1);
    }

    #[test]
    fn join_via_sql() {
        let db = db_with_r();
        db.create_table(
            "d",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 2])),
                ("grp", Column::int(vec![10, 20])),
            ]),
        )
        .unwrap();
        let t = db
            .query("SELECT grp, SUM(y) AS s FROM r JOIN d USING (a) GROUP BY grp ORDER BY grp")
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column(None, "s").unwrap().get(0), Datum::Float(5.0));
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let db = Database::in_memory();
        db.create_table(
            "l",
            Table::from_columns(vec![("k", Column::int(vec![1, 2, 3]))]),
        )
        .unwrap();
        db.create_table(
            "rr",
            Table::from_columns(vec![
                ("k", Column::int(vec![1])),
                ("v", Column::int(vec![100])),
            ]),
        )
        .unwrap();
        let t = db
            .query("SELECT k, v FROM l LEFT JOIN rr USING (k) ORDER BY k")
            .unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column(None, "v").unwrap().get(0), Datum::Int(100));
        assert_eq!(t.column(None, "v").unwrap().get(2), Datum::Null);
    }

    #[test]
    fn semi_join_filters_without_duplicating() {
        let db = Database::in_memory();
        db.create_table(
            "l",
            Table::from_columns(vec![("k", Column::int(vec![1, 2, 3]))]),
        )
        .unwrap();
        db.create_table(
            "rr",
            Table::from_columns(vec![("k", Column::int(vec![1, 1, 2]))]),
        )
        .unwrap();
        let t = db
            .query("SELECT k FROM l SEMI JOIN rr USING (k) ORDER BY k")
            .unwrap();
        assert_eq!(t.num_rows(), 2, "duplicates on the right do not multiply");
    }

    #[test]
    fn window_over_grouped_subquery_matches_paper_example() {
        // Example 2 shape: prefix sums over per-value aggregates.
        let db = db_with_r();
        let t = db
            .query(
                "SELECT a, SUM(c) OVER (ORDER BY a) AS cc, SUM(s) OVER (ORDER BY a) AS ss \
                 FROM (SELECT a, SUM(y) AS s, COUNT(*) AS c FROM r GROUP BY a) AS g ORDER BY a",
            )
            .unwrap();
        assert_eq!(t.column(None, "cc").unwrap().get(1), Datum::Float(4.0));
        assert_eq!(t.column(None, "ss").unwrap().get(1), Datum::Float(8.0));
    }

    #[test]
    fn row_mode_same_results() {
        let db = Database::new(EngineConfig::dbms_x_row());
        db.create_table(
            "r",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2, 2])),
                ("y", Column::float(vec![2.0, 3.0, 1.0, 2.0])),
            ]),
        )
        .unwrap();
        let t = db
            .query("SELECT a, SUM(y) AS s FROM r WHERE y > 1.0 GROUP BY a ORDER BY a")
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column(None, "s").unwrap().get(0), Datum::Float(5.0));
        assert_eq!(t.column(None, "s").unwrap().get(1), Datum::Float(2.0));
    }

    #[test]
    fn external_table_scan_and_replace() {
        let db = Database::in_memory();
        let f = Table::from_columns(vec![
            ("a", Column::int(vec![1, 2])),
            ("s", Column::float(vec![1.0, 2.0])),
        ]);
        db.register_external("f", &f);
        let t = db.query("SELECT SUM(s) AS s FROM f").unwrap();
        assert_eq!(t.scalar_f64("s").unwrap(), 3.0);
        assert!(db.stats().interop_bytes_copied > 0);
        db.external("f")
            .unwrap()
            .replace_column("s", Column::float(vec![5.0, 5.0]))
            .unwrap();
        let t = db.query("SELECT SUM(s) AS s FROM f").unwrap();
        assert_eq!(t.scalar_f64("s").unwrap(), 10.0);
    }

    #[test]
    fn drop_table_if_exists() {
        let db = db_with_r();
        db.execute("DROP TABLE IF EXISTS nope").unwrap();
        db.execute("DROP TABLE r").unwrap();
        assert!(!db.has_table("r"));
        assert!(db.execute("DROP TABLE r").is_err());
    }

    #[test]
    fn order_by_desc_limit_and_null_last() {
        let db = db_with_r();
        // NULL criteria (e.g. division by zero at the boundary split) must
        // sort last even in DESC order, so LIMIT 1 picks the real value.
        let t = db
            .query(
                "SELECT a, CASE WHEN a = 1 THEN NULL ELSE 5.0 END AS crit \
                 FROM r GROUP BY a ORDER BY crit DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column(None, "crit").unwrap().get(0), Datum::Float(5.0));
        assert_eq!(t.column(None, "a").unwrap().get(0), Datum::Int(2));
    }
}
