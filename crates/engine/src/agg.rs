//! Fused grouped aggregation: typed accumulator banks over a shared
//! grouping pass.
//!
//! sqlgen emits one `SUM` per ring component (3 for the variance ring,
//! 2+ for gradient boosting), so a split query used to re-evaluate and
//! re-materialize per aggregate. Here every aggregate's argument is
//! evaluated exactly once up front into a typed form ([`PreparedAgg`]),
//! `COUNT(*)` is answered directly from the grouping pass's group sizes,
//! and each remaining bank fills with one monomorphic tight scan over the
//! shared (cache-hot) group id array — measured ~2x faster than folding
//! all banks in a single pass with per-row polymorphic dispatch.
//!
//! The parallel variant slices by *aggregate*: each worker owns a subset
//! of the accumulator banks and folds all rows into them, in row order —
//! exactly the sequence of floating-point operations the serial pass
//! performs per bank, so parallel results are bit-identical to serial
//! (a stronger guarantee than ⊕-associativity, which `ring_laws.rs`
//! checks for the rings but which f64 addition lacks). This matches the
//! emitted query shapes: one `SUM` per ring component means a variance
//! split query carries 3 independent banks and a gradient query 2+.

use crate::column::Column;
use crate::datum::Datum;
use crate::error::{EngineError, Result};
use crate::storage::PagedStore;

/// Don't spin up worker threads for tiny inputs.
const PARALLEL_MIN_ROWS: usize = 8192;

/// One aggregate call with its argument evaluated (once) into the typed
/// form its accumulator consumes.
pub enum PreparedAgg {
    /// `COUNT(*)`: answered from the grouping pass's group sizes.
    CountStar,
    /// `COUNT(expr)`: counts valid rows of the argument.
    Count {
        /// Validity mask of the argument (`None` = all valid).
        valid: Option<Vec<bool>>,
    },
    /// `SUM(expr)` over an f64 view (NULL → NaN, skipped).
    Sum {
        /// Argument values (NULL encoded as NaN).
        vals: Vec<f64>,
        /// Emit integer sums (argument column was integer-typed).
        int_input: bool,
    },
    /// `AVG(expr)` over an f64 view (NULL → NaN, skipped).
    Avg {
        /// Argument values (NULL encoded as NaN).
        vals: Vec<f64>,
    },
    /// `MIN(expr)` / `MAX(expr)` via SQL comparison on the argument.
    MinMax {
        /// The evaluated argument column.
        col: Column,
        /// `true` for MIN, `false` for MAX.
        is_min: bool,
    },
}

impl PreparedAgg {
    /// Build from an aggregate name and its evaluated argument
    /// (`None` only for `COUNT(*)`).
    pub fn new(name: &str, arg: Option<Column>) -> Result<PreparedAgg> {
        match (name, arg) {
            ("COUNT", None) => Ok(PreparedAgg::CountStar),
            ("COUNT", Some(c)) => Ok(PreparedAgg::Count { valid: c.validity }),
            ("SUM", Some(c)) => Ok(PreparedAgg::Sum {
                int_input: c.as_i64_slice().is_some(),
                vals: into_f64_vec(c)?,
            }),
            ("AVG", Some(c)) => Ok(PreparedAgg::Avg {
                vals: into_f64_vec(c)?,
            }),
            ("MIN", Some(c)) => Ok(PreparedAgg::MinMax {
                col: c,
                is_min: true,
            }),
            ("MAX", Some(c)) => Ok(PreparedAgg::MinMax {
                col: c,
                is_min: false,
            }),
            (other, _) => Err(EngineError::Other(format!("unknown aggregate {other}"))),
        }
    }

    /// Restrict this aggregate's argument to the given rows (in the given
    /// order). Used by the spilling path to process one group slice at a
    /// time: row order is preserved, so each group folds the same value
    /// sequence as the unsliced pass.
    fn gather(&self, rows: &[u32]) -> PreparedAgg {
        match self {
            PreparedAgg::CountStar => PreparedAgg::CountStar,
            PreparedAgg::Count { valid } => PreparedAgg::Count {
                valid: valid
                    .as_ref()
                    .map(|v| rows.iter().map(|&r| v[r as usize]).collect()),
            },
            PreparedAgg::Sum { vals, int_input } => PreparedAgg::Sum {
                vals: rows.iter().map(|&r| vals[r as usize]).collect(),
                int_input: *int_input,
            },
            PreparedAgg::Avg { vals } => PreparedAgg::Avg {
                vals: rows.iter().map(|&r| vals[r as usize]).collect(),
            },
            PreparedAgg::MinMax { col, is_min } => PreparedAgg::MinMax {
                col: Column::from_datums(
                    &rows
                        .iter()
                        .map(|&r| {
                            if col.is_valid(r as usize) {
                                col.get(r as usize)
                            } else {
                                Datum::Null
                            }
                        })
                        .collect::<Vec<_>>(),
                ),
                is_min: *is_min,
            },
        }
    }

    /// Fresh accumulator bank covering `len` groups.
    fn new_acc(&self, len: usize) -> Acc {
        match self {
            PreparedAgg::CountStar | PreparedAgg::Count { .. } => Acc::Counts(vec![0; len]),
            PreparedAgg::Sum { .. } | PreparedAgg::Avg { .. } => Acc::SumCount {
                sums: vec![0.0; len],
                counts: vec![0; len],
            },
            PreparedAgg::MinMax { .. } => Acc::Best(vec![Datum::Null; len]),
        }
    }

    /// Fold every row into the bank with a monomorphic tight loop per
    /// accumulator kind (matching once per bank, not once per row — the
    /// per-row polymorphic dispatch measured ~2x slower). Each group's
    /// values fold in row order, which is what makes the parallel variant
    /// bit-identical to serial.
    fn fill(&self, acc: &mut Acc, gids: &[u32]) {
        match (self, acc) {
            (PreparedAgg::CountStar, Acc::Counts(c)) => {
                for &g in gids {
                    c[g as usize] += 1;
                }
            }
            (PreparedAgg::Count { valid }, Acc::Counts(c)) => match valid {
                None => {
                    for &g in gids {
                        c[g as usize] += 1;
                    }
                }
                Some(v) => {
                    for (&g, &ok) in gids.iter().zip(v) {
                        if ok {
                            c[g as usize] += 1;
                        }
                    }
                }
            },
            (
                PreparedAgg::Sum { vals, .. } | PreparedAgg::Avg { vals },
                Acc::SumCount { sums, counts },
            ) => {
                for (&g, &v) in gids.iter().zip(vals) {
                    if !v.is_nan() {
                        sums[g as usize] += v;
                        counts[g as usize] += 1;
                    }
                }
            }
            (PreparedAgg::MinMax { col, is_min }, Acc::Best(best)) => {
                for (row, &g) in gids.iter().enumerate() {
                    if !col.is_valid(row) {
                        continue;
                    }
                    let v = col.get(row);
                    let replace = match &best[g as usize] {
                        Datum::Null => true,
                        cur => {
                            let ord = v.sql_cmp(cur);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        best[g as usize] = v;
                    }
                }
            }
            _ => unreachable!("accumulator does not match aggregate"),
        }
    }

    /// Materialize the result column from a full-size bank.
    fn finish(&self, acc: Acc) -> Column {
        match (self, acc) {
            (PreparedAgg::CountStar | PreparedAgg::Count { .. }, Acc::Counts(c)) => Column::int(c),
            (PreparedAgg::Avg { .. }, Acc::SumCount { sums, counts }) => {
                let out: Vec<Datum> = sums
                    .iter()
                    .zip(&counts)
                    .map(|(&s, &c)| {
                        if c == 0 {
                            Datum::Null
                        } else {
                            Datum::Float(s / c as f64)
                        }
                    })
                    .collect();
                Column::from_datums(&out)
            }
            (PreparedAgg::Sum { int_input, .. }, Acc::SumCount { sums, counts }) => {
                let out: Vec<Datum> = sums
                    .iter()
                    .zip(&counts)
                    .map(|(&s, &c)| {
                        if c == 0 {
                            Datum::Null
                        } else if *int_input {
                            Datum::Int(s as i64)
                        } else {
                            Datum::Float(s)
                        }
                    })
                    .collect();
                Column::from_datums(&out)
            }
            (PreparedAgg::MinMax { .. }, Acc::Best(best)) => Column::from_datums(&best),
            _ => unreachable!("accumulator does not match aggregate"),
        }
    }
}

/// Accumulator bank of one aggregate over the group space.
enum Acc {
    Counts(Vec<i64>),
    SumCount { sums: Vec<f64>, counts: Vec<i64> },
    Best(Vec<Datum>),
}

/// Move the f64 data out of an evaluated argument column, copying only
/// when the representation demands it (ints widen, NULLs become NaN).
fn into_f64_vec(c: Column) -> Result<Vec<f64>> {
    match (c.data, c.validity) {
        (crate::column::ColumnData::Float(v), None) => Ok(v),
        (data, validity) => Column { data, validity }.to_f64_vec(),
    }
}

/// Compute every aggregate in `inputs` per group over the shared `gids`.
/// `sizes` (the grouping pass by-product) short-circuits `COUNT(*)`.
/// `threads > 1` enables the aggregate-sliced parallel variant
/// (bit-identical to serial; see module docs).
pub fn compute_grouped(
    inputs: &[PreparedAgg],
    gids: &[u32],
    num_groups: usize,
    sizes: Option<&[u32]>,
    threads: usize,
) -> Vec<Column> {
    // COUNT(*) banks come straight from the grouping pass when available;
    // only the remaining aggregates need the row scan.
    let mut banks: Vec<Option<Acc>> = inputs
        .iter()
        .map(|a| match (a, sizes) {
            (PreparedAgg::CountStar, Some(s)) => {
                Some(Acc::Counts(s.iter().map(|&c| c as i64).collect()))
            }
            _ => None,
        })
        .collect();
    let active: Vec<usize> = (0..inputs.len()).filter(|&i| banks[i].is_none()).collect();
    let workers = threads.max(1).min(active.len());
    let computed: Vec<(usize, Acc)> = if workers > 1 && gids.len() >= PARALLEL_MIN_ROWS {
        compute_parallel(inputs, &active, gids, num_groups, workers)
    } else {
        active
            .iter()
            .map(|&i| {
                let mut acc = inputs[i].new_acc(num_groups);
                inputs[i].fill(&mut acc, gids);
                (i, acc)
            })
            .collect()
    };
    for (i, acc) in computed {
        banks[i] = Some(acc);
    }
    inputs
        .iter()
        .zip(banks)
        .map(|(input, acc)| input.finish(acc.expect("bank computed")))
        .collect()
}

/// Estimated accumulator-bank footprint per group across all aggregates
/// (Counts: one i64; Sum/Avg: f64 + i64; Min/Max: a Datum slot).
pub fn bank_bytes_per_group(inputs: &[PreparedAgg]) -> usize {
    inputs
        .iter()
        .map(|a| match a {
            PreparedAgg::CountStar | PreparedAgg::Count { .. } => 8,
            PreparedAgg::Sum { .. } | PreparedAgg::Avg { .. } => 16,
            PreparedAgg::MinMax { .. } => 32,
        })
        .sum()
}

/// Estimated total accumulator-bank footprint of one grouped aggregation.
pub fn bank_bytes(inputs: &[PreparedAgg], num_groups: usize) -> usize {
    bank_bytes_per_group(inputs).saturating_mul(num_groups)
}

/// Spilling variant of [`compute_grouped`]: when the accumulator banks
/// would exceed `budget_bytes`, slice the *group-id space* so each slice's
/// banks fit the budget, aggregate one slice at a time, and park finished
/// slice results as page chains in `store` until every slice is done.
///
/// Bit-identical to the unsliced pass: a slice gathers its rows in global
/// row order, so each group folds exactly the same f64 sequence, and the
/// page codec round-trips every value by bit pattern.
pub fn compute_grouped_spilled(
    inputs: &[PreparedAgg],
    gids: &[u32],
    num_groups: usize,
    sizes: Option<&[u32]>,
    threads: usize,
    store: &PagedStore,
    budget_bytes: usize,
) -> Result<Vec<Column>> {
    let per_group = bank_bytes_per_group(inputs).max(1);
    let groups_per_slice = (budget_bytes / per_group).clamp(1, num_groups.max(1));
    if groups_per_slice >= num_groups || inputs.is_empty() {
        return Ok(compute_grouped(inputs, gids, num_groups, sizes, threads));
    }
    let num_slices = num_groups.div_ceil(groups_per_slice);
    // Bucket row indices per slice; pushes preserve global row order.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_slices];
    for (row, &g) in gids.iter().enumerate() {
        buckets[g as usize / groups_per_slice].push(row as u32);
    }
    let mut spilled: Vec<Vec<crate::storage::PagedColumn>> = Vec::with_capacity(num_slices);
    for (s, rows) in buckets.iter().enumerate() {
        let lo = s * groups_per_slice;
        let hi = ((s + 1) * groups_per_slice).min(num_groups);
        let local_gids: Vec<u32> = rows.iter().map(|&r| gids[r as usize] - lo as u32).collect();
        let local_inputs: Vec<PreparedAgg> = inputs.iter().map(|a| a.gather(rows)).collect();
        let local_sizes = sizes.map(|sz| &sz[lo..hi]);
        let cols = compute_grouped(&local_inputs, &local_gids, hi - lo, local_sizes, threads);
        spilled.push(
            cols.iter()
                .map(|c| store.store_column(c))
                .collect::<Result<Vec<_>>>()?,
        );
    }
    // Merge: per aggregate, decode each slice's result and concatenate.
    let mut out = Vec::with_capacity(inputs.len());
    for i in 0..inputs.len() {
        let mut datums = Vec::with_capacity(num_groups);
        for pcs in &spilled {
            let col = store.load_column(&pcs[i])?;
            for r in 0..col.len() {
                datums.push(if col.is_valid(r) {
                    col.get(r)
                } else {
                    Datum::Null
                });
            }
        }
        out.push(Column::from_datums(&datums));
    }
    for pcs in &spilled {
        for pc in pcs {
            store.free_column(pc)?;
        }
    }
    Ok(out)
}

/// Aggregate-sliced parallel fill: worker `w` owns every `workers`-th
/// active aggregate and folds all rows into those banks exactly as the
/// serial pass would.
fn compute_parallel(
    inputs: &[PreparedAgg],
    active: &[usize],
    gids: &[u32],
    num_groups: usize,
    workers: usize,
) -> Vec<(usize, Acc)> {
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    active
                        .iter()
                        .copied()
                        .skip(w)
                        .step_by(workers)
                        .map(|i| {
                            let mut acc = inputs[i].new_acc(num_groups);
                            inputs[i].fill(&mut acc, gids);
                            (i, acc)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("aggregation worker panicked"))
            .collect()
    })
    .expect("aggregation scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gids_round_robin(n: usize, groups: usize) -> Vec<u32> {
        (0..n).map(|i| (i % groups) as u32).collect()
    }

    #[test]
    fn fused_matches_expected_sums() {
        let n = 10;
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let inputs = vec![
            PreparedAgg::CountStar,
            PreparedAgg::Sum {
                vals: vals.clone(),
                int_input: false,
            },
            PreparedAgg::Avg { vals },
        ];
        let gids = gids_round_robin(n, 2);
        let cols = compute_grouped(&inputs, &gids, 2, None, 1);
        assert_eq!(cols[0].get(0), Datum::Int(5));
        assert_eq!(cols[1].get(0), Datum::Float(0.0 + 2.0 + 4.0 + 6.0 + 8.0));
        assert_eq!(
            cols[2].get(1),
            Datum::Float((1.0 + 3.0 + 5.0 + 7.0 + 9.0) / 5.0)
        );
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Values chosen so that reassociating the f64 sum changes the
        // result; aggregate-sliced parallelism must not reassociate.
        let n = 100_000;
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761usize) % 1000) as f64 * 1e-3 + 1e10 * ((i % 7) as f64))
            .collect();
        let gids = gids_round_robin(n, 37);
        // Three ring components, like a variance split query.
        let mk = || {
            vec![
                PreparedAgg::CountStar,
                PreparedAgg::Sum {
                    vals: vals.clone(),
                    int_input: false,
                },
                PreparedAgg::Sum {
                    vals: vals.iter().map(|v| v * v).collect(),
                    int_input: false,
                },
                PreparedAgg::Avg { vals: vals.clone() },
            ]
        };
        for workers in [2usize, 3, 8] {
            let serial = compute_grouped(&mk(), &gids, 37, None, 1);
            let parallel = compute_grouped(&mk(), &gids, 37, None, workers);
            for (s, p) in serial.iter().zip(&parallel) {
                for g in 0..37 {
                    match (s.get(g), p.get(g)) {
                        (Datum::Float(x), Datum::Float(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "group {g}, workers {workers}");
                        }
                        (a, b) => assert_eq!(a, b),
                    }
                }
            }
        }
    }

    #[test]
    fn spilled_is_bit_identical_to_in_memory() {
        use crate::storage::{PagedStore, Replacement};
        let dir = std::env::temp_dir().join(format!("jb_agg_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = PagedStore::open(&dir, 4, Replacement::Clock).unwrap();
        let n = 50_000;
        let groups = 997;
        // Sum order matters for these values: reassociation changes bits.
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761usize) % 1000) as f64 * 1e-3 + 1e9 * ((i % 5) as f64))
            .collect();
        let gids: Vec<u32> = (0..n).map(|i| ((i * 31) % groups) as u32).collect();
        let mut sizes = vec![0u32; groups];
        for &g in &gids {
            sizes[g as usize] += 1;
        }
        let mk = || {
            vec![
                PreparedAgg::CountStar,
                PreparedAgg::Sum {
                    vals: vals.clone(),
                    int_input: false,
                },
                PreparedAgg::Avg { vals: vals.clone() },
                PreparedAgg::MinMax {
                    col: Column::float(vals.clone()),
                    is_min: true,
                },
            ]
        };
        let reference = compute_grouped(&mk(), &gids, groups, Some(&sizes), 1);
        // Budget forces ~13 slices (997 groups × 72 B/group ≫ 5 KiB).
        let spilled =
            compute_grouped_spilled(&mk(), &gids, groups, Some(&sizes), 1, &store, 5 * 1024)
                .unwrap();
        for (s, p) in reference.iter().zip(&spilled) {
            for g in 0..groups {
                match (s.get(g), p.get(g)) {
                    (Datum::Float(x), Datum::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "group {g}");
                    }
                    (a, b) => assert_eq!(a, b, "group {g}"),
                }
            }
        }
        // Spill pages were returned to the free list.
        assert_eq!(
            store.disk().pages_free() as u64,
            store.disk().pages_allocated(),
            "all spill pages freed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_max_and_null_handling() {
        let col = Column::from_datums(&[
            Datum::Float(3.0),
            Datum::Null,
            Datum::Float(-1.0),
            Datum::Float(2.0),
        ]);
        let inputs = vec![
            PreparedAgg::MinMax {
                col: col.clone(),
                is_min: true,
            },
            PreparedAgg::MinMax {
                col: col.clone(),
                is_min: false,
            },
            PreparedAgg::Count {
                valid: col.validity.clone(),
            },
        ];
        let gids = vec![0u32, 0, 0, 1];
        let cols = compute_grouped(&inputs, &gids, 2, None, 1);
        assert_eq!(cols[0].get(0), Datum::Float(-1.0));
        assert_eq!(cols[1].get(0), Datum::Float(3.0));
        assert_eq!(cols[2].get(0), Datum::Int(2));
        assert_eq!(cols[0].get(1), Datum::Float(2.0));
    }
}
