//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// Column data types. Strings are dictionary-encoded in storage
/// (the paper dictionary-encodes strings to 32-bit integers as well).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Dictionary-encoded string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => f.write_str("INT"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Str => f.write_str("STR"),
        }
    }
}

/// A single scalar value (row-mode execution, constants, query results).
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Datum {
    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view (integers widen to f64); `None` for NULL/strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(v) => Some(*v as f64),
            Datum::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view (floats truncate); `None` for NULL/strings.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            Datum::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness for predicate results: non-zero numeric is true;
    /// NULL is false (SQL three-valued logic collapses to false at the
    /// filter boundary, which is all this engine needs).
    pub fn is_truthy(&self) -> bool {
        match self {
            Datum::Int(v) => *v != 0,
            Datum::Float(v) => *v != 0.0,
            Datum::Str(_) => false,
            Datum::Null => false,
        }
    }

    /// SQL comparison: NULLs sort last and compare equal to each other
    /// (grouping semantics); cross numeric types compare by value.
    pub fn sql_cmp(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => {
                let (x, y) = (a.as_f64(), b.as_f64());
                match (x, y) {
                    (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                    _ => Ordering::Equal,
                }
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Datum::Int(3).as_f64(), Some(3.0));
        assert_eq!(Datum::Float(2.5).as_i64(), Some(2));
        assert_eq!(Datum::Null.as_f64(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Datum::Int(1).is_truthy());
        assert!(!Datum::Int(0).is_truthy());
        assert!(!Datum::Null.is_truthy());
    }

    #[test]
    fn comparison_null_last() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), Ordering::Greater);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Float(1.5)), Ordering::Less);
        assert_eq!(Datum::Null.sql_cmp(&Datum::Null), Ordering::Equal);
    }
}
