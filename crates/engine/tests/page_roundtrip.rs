//! The page codec, attacked from both sides:
//!
//! * **roundtrip proptests** — arbitrary columns (every `DataType`, NULL
//!   masks, empty columns, NaN payloads, `-0.0`, dictionaries with
//!   duplicate and unreferenced entries) survive encode → paginate →
//!   unpaginate → decode *bit-exactly*, at any chain length, and through
//!   a [`PagedStore`] whose buffer pool holds a single page;
//! * **adversarial proptests** — truncating the byte string at any cut
//!   point is a checked error, and flipping any byte of any page never
//!   panics and never over-allocates (the decoder's count guard bounds
//!   every allocation by the bytes actually present).

use proptest::prelude::*;

use joinboost_engine::column::ColumnData;
use joinboost_engine::storage::codec::{decode_column, encode_column, ByteReader};
use joinboost_engine::storage::page::{
    decode_column_pages, encode_column_pages, paginate, unpaginate, PageBuf,
};
use joinboost_engine::storage::{PagedStore, Replacement, PAGE_SIZE};
use joinboost_engine::{Column, Table};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Raw column data of every type. Floats come from raw bit patterns, so
/// NaN payloads, infinities, subnormals and `-0.0` are all exercised;
/// string dictionaries may hold duplicates and unreferenced entries —
/// the codec must carry whatever the engine might hand it.
fn arb_column(rows: usize) -> impl Strategy<Value = Column> {
    let data = prop_oneof![
        prop::collection::vec(any::<i64>(), rows).prop_map(ColumnData::Int),
        prop::collection::vec(any::<u64>(), rows)
            .prop_map(|v| ColumnData::Float(v.into_iter().map(f64::from_bits).collect())),
        (
            prop::collection::vec("[a-z]{0,4}", 1..4),
            prop::collection::vec(any::<u32>(), rows)
        )
            .prop_map(|(dict, codes)| {
                let n = dict.len() as u32;
                ColumnData::Str {
                    dict,
                    codes: codes.into_iter().map(|c| c % n).collect(),
                }
            }),
    ];
    (
        data,
        prop::option::of(prop::collection::vec(any::<bool>(), rows)),
    )
        .prop_map(|(data, validity)| Column { data, validity })
}

/// Columns from empty up to several pages long (a 700-row f64 column is
/// ~5.6 KB — past one 4 KiB page).
fn arb_sized_column() -> impl Strategy<Value = Column> {
    prop_oneof![
        Just(0usize),
        1usize..40,
        600usize..900, // multi-page
    ]
    .prop_flat_map(arb_column)
}

// ---------------------------------------------------------------------------
// Roundtrips
// ---------------------------------------------------------------------------

proptest! {
    /// Any column survives the full pipeline bit-exactly: bit-exactness
    /// is proven by re-encoding the decoded column and comparing bytes
    /// (sidestepping NaN != NaN).
    #[test]
    fn column_roundtrips_bit_exactly_through_pages(col in arb_sized_column()) {
        let mut bytes = Vec::new();
        encode_column(&mut bytes, &col);
        let pages = encode_column_pages(&col);
        prop_assert_eq!(pages.len(), bytes.len().div_ceil(PAGE_SIZE - 8).max(1));
        let refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        let back = decode_column_pages(&refs).unwrap();
        prop_assert_eq!(back.len(), col.len());
        prop_assert_eq!(back.dtype(), col.dtype());
        let mut reencoded = Vec::new();
        encode_column(&mut reencoded, &back);
        prop_assert_eq!(reencoded, bytes);
    }

    /// The same through a real store with a single-frame buffer pool:
    /// every page load evicts the previous one, so the chain is stitched
    /// from disk, not from warm frames.
    #[test]
    fn store_roundtrips_through_a_one_page_pool(col in arb_sized_column()) {
        let dir = std::env::temp_dir().join(format!(
            "jb_pr_store_{}_{}",
            std::process::id(),
            col.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = PagedStore::open(&dir, 1, Replacement::Lru).unwrap();
        let pc = store.store_column(&col).unwrap();
        let back = store.load_column(&pc).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_column(&mut a, &col);
        encode_column(&mut b, &back);
        prop_assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Adversarial inputs
// ---------------------------------------------------------------------------

proptest! {
    /// Every strict prefix of a valid encoding is a checked error — the
    /// decoder cannot read fields it does not have, and a decode that
    /// "succeeds" early is caught by the trailing-bytes check.
    #[test]
    fn truncation_at_any_cut_is_a_checked_error(col in arb_sized_column(), cut in any::<u64>()) {
        let mut bytes = Vec::new();
        encode_column(&mut bytes, &col);
        prop_assert!(!bytes.is_empty());
        let cut = (cut % bytes.len() as u64) as usize;
        let mut r = ByteReader::new(&bytes[..cut]);
        let res = decode_column(&mut r).and_then(|c| {
            r.done()?;
            Ok(c)
        });
        prop_assert!(res.is_err(), "decode of a {cut}-byte prefix succeeded");
    }

    /// Flipping any single byte never panics and never over-allocates:
    /// either the decoder rejects the damage, or the flip landed in a
    /// value byte and the result is a (different) well-formed column.
    #[test]
    fn bit_flips_never_panic(col in arb_sized_column(), pos in any::<u64>(), flip in 1u8..=255) {
        let pages = encode_column_pages(&col);
        let mut pages: Vec<Box<PageBuf>> = pages;
        let total = pages.len() * PAGE_SIZE;
        let pos = (pos % total as u64) as usize;
        pages[pos / PAGE_SIZE][pos % PAGE_SIZE] ^= flip;
        let refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        if let Ok(back) = decode_column_pages(&refs) {
            // Survivors must still be internally consistent.
            let mut reencoded = Vec::new();
            encode_column(&mut reencoded, &back);
            prop_assert!(!reencoded.is_empty() || back.is_empty());
        }
    }

    /// Raw garbage bytes (not derived from any encoding) decode without
    /// panicking, and the pagination layer itself rejects damaged
    /// headers rather than mis-stitching chains.
    #[test]
    fn garbage_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut r = ByteReader::new(&bytes);
        let _ = decode_column(&mut r);
        let pages = paginate(&bytes);
        let refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        prop_assert!(unpaginate(&refs).is_ok(), "own pagination must verify");
    }
}

// ---------------------------------------------------------------------------
// Deterministic edges
// ---------------------------------------------------------------------------

#[test]
fn empty_columns_of_every_type_roundtrip() {
    for col in [
        Column::int(vec![]),
        Column::float(vec![]),
        Column::str(Vec::<String>::new()),
    ] {
        let pages = encode_column_pages(&col);
        assert_eq!(pages.len(), 1, "empty columns still get one page");
        let refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
        let back = decode_column_pages(&refs).unwrap();
        assert_eq!(back, col);
    }
}

#[test]
fn special_floats_roundtrip_bit_exactly() {
    let specials = vec![
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::from_bits(0x7FF8_0000_0000_0001), // NaN payload
        f64::MIN_POSITIVE / 2.0,               // subnormal
        f64::MAX,
    ];
    let col = Column::float(specials.clone());
    let pages = encode_column_pages(&col);
    let refs: Vec<&PageBuf> = pages.iter().map(|p| p.as_ref()).collect();
    let back = decode_column_pages(&refs).unwrap();
    match &back.data {
        ColumnData::Float(v) => {
            for (a, b) in specials.iter().zip(v) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        other => panic!("wrong dtype back: {other:?}"),
    }
}

#[test]
fn whole_tables_roundtrip_through_a_store() {
    let dir = std::env::temp_dir().join(format!("jb_pr_table_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = PagedStore::open(&dir, 2, Replacement::Clock).unwrap();
    let t = Table::from_columns(vec![
        ("k", Column::int((0..2000).collect())),
        (
            "v",
            Column::float((0..2000).map(|i| (i as f64).sqrt()).collect()),
        ),
        (
            "s",
            Column::str((0..2000).map(|i| format!("g{}", i % 13)).collect()),
        ),
    ]);
    let pt = store.store_table(&t).unwrap();
    assert_eq!(store.load_table(&pt).unwrap(), t);
    let _ = std::fs::remove_dir_all(&dir);
}
