//! Abstract syntax tree for the JoinBoost SQL subset, with a printer.
//!
//! The printer (`Display`) emits portable, vendor-neutral SQL. The parser in
//! [`crate::parser`] accepts everything the printer emits (round-trip
//! property: `parse(print(q)) == q`).

use std::fmt;

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Null,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Keep a decimal point so the literal re-parses as float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Null => f.write_str("NULL"),
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 3,
            BinaryOp::Add | BinaryOp::Sub => 4,
            BinaryOp::Mul | BinaryOp::Div => 5,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Scalar / aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column reference.
    Column {
        table: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// Function call: scalar (`ABS`, `LOG`, ...) or aggregate (`SUM`,
    /// `COUNT`, ...). `COUNT(*)` is represented with a single
    /// [`Expr::Wildcard`] argument.
    Func {
        name: String,
        args: Vec<Expr>,
    },
    /// `*` — only valid inside `COUNT(*)` or as a lone select item.
    Wildcard,
    /// `SUM(expr) OVER (ORDER BY key)` running prefix sum
    /// (`ROWS UNBOUNDED PRECEDING` semantics; JoinBoost only applies it
    /// after a `GROUP BY key`, so keys are distinct and RANGE == ROWS).
    WindowSum {
        arg: Box<Expr>,
        order_by: Box<Expr>,
    },
    Case {
        whens: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (SELECT ...)` — the semi-join predicate used to push
    /// leaf predicates to the fact table.
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
}

#[allow(clippy::should_implement_trait)] // builder helpers, not operator impls
impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    pub fn float(v: f64) -> Expr {
        Expr::Literal(Value::Float(v))
    }

    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Value::Str(v.into()))
    }

    pub fn null() -> Expr {
        Expr::Literal(Value::Null)
    }

    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Func {
            name: name.into(),
            args,
        }
    }

    pub fn sum(arg: Expr) -> Expr {
        Expr::func("SUM", vec![arg])
    }

    pub fn count_star() -> Expr {
        Expr::func("COUNT", vec![Expr::Wildcard])
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::And, left, right)
    }

    /// Fold a list of predicates with `AND`; `None` if empty.
    pub fn and_all(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        preds.into_iter().reduce(Expr::and)
    }

    pub fn neg(expr: Expr) -> Expr {
        Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(expr),
        }
    }

    pub fn not(expr: Expr) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(expr),
        }
    }

    pub fn add(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Add, left, right)
    }

    pub fn sub(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Sub, left, right)
    }

    pub fn mul(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Mul, left, right)
    }

    pub fn div(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Div, left, right)
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            // NOT binds between AND and the comparisons.
            Expr::Unary {
                op: UnaryOp::Not, ..
            } => 2,
            Expr::Unary { .. } => 6,
            Expr::InSubquery { .. } | Expr::InList { .. } | Expr::IsNull { .. } => 3,
            _ => 7,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{t}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                let p = op.precedence();
                fmt_child(f, left, p, false)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand needs parens at equal precedence for the
                // non-associative cases (a - (b - c), a / (b / c)).
                fmt_child(f, right, p, true)
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    f.write_str("-")?;
                    fmt_child(f, expr, 6, true)
                }
                // Parenthesize unconditionally: NOT binds looser than the
                // comparisons, so `NOT a = b` would re-parse differently.
                UnaryOp::Not => write!(f, "NOT ({expr})"),
            },
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Wildcard => f.write_str("*"),
            Expr::WindowSum { arg, order_by } => {
                write!(f, "SUM({arg}) OVER (ORDER BY {order_by})")
            }
            Expr::Case { whens, else_expr } => {
                f.write_str("CASE")?;
                for (cond, then) in whens {
                    write!(f, " WHEN {cond} THEN {then}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                fmt_child(f, expr, 3, false)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                write!(f, " IN ({query})")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                fmt_child(f, expr, 3, false)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                f.write_str(" IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::IsNull { expr, negated } => {
                fmt_child(f, expr, 3, false)?;
                if *negated {
                    f.write_str(" IS NOT NULL")
                } else {
                    f.write_str(" IS NULL")
                }
            }
        }
    }
}

fn fmt_child(
    f: &mut fmt::Formatter<'_>,
    child: &Expr,
    parent_prec: u8,
    right: bool,
) -> fmt::Result {
    let cp = child.precedence();
    if cp < parent_prec || (right && cp == parent_prec) {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    pub fn new(expr: Expr) -> Self {
        SelectItem { expr, alias: None }
    }

    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem {
            expr,
            alias: Some(alias.into()),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

/// A table reference in `FROM` / `JOIN`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<Query>,
        alias: Option<String>,
    },
}

impl TableRef {
    pub fn named(name: impl Into<String>) -> Self {
        TableRef::Named {
            name: name.into(),
            alias: None,
        }
    }

    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef::Named {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    pub fn subquery(query: Query) -> Self {
        TableRef::Subquery {
            query: Box::new(query),
            alias: None,
        }
    }

    /// The name this reference binds in scope (alias if present).
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => alias.as_deref(),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                write!(f, "({query})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// Join kind. `Semi` is printed as `SEMI JOIN` (the engine understands it;
/// on other DBMSes JoinBoost prints the equivalent `IN (SELECT ..)` form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
    /// Left semi join: filter left rows by match existence; annotations of
    /// the left side are unchanged (paper, footnote 3).
    Semi,
    /// Full outer join: used for the missing-join-key extension
    /// (Appendix D.2).
    Full,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinKind::Inner => f.write_str("JOIN"),
            JoinKind::Left => f.write_str("LEFT JOIN"),
            JoinKind::Semi => f.write_str("SEMI JOIN"),
            JoinKind::Full => f.write_str("FULL JOIN"),
        }
    }
}

/// One `JOIN` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    /// `USING (k1, k2, ...)` — JoinBoost always joins on shared key names.
    pub using: Vec<String>,
    /// Optional extra `ON` predicate (theta-join extension, Appendix B.1).
    pub on: Option<Expr>,
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.table)?;
        if !self.using.is_empty() {
            write!(f, " USING ({})", self.using.join(", "))?;
        }
        if let Some(on) = &self.on {
            write!(f, " ON {on}")?;
        }
        Ok(())
    }
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// Top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Query),
    /// `CREATE [OR REPLACE] TABLE name AS query`.
    CreateTableAs {
        name: String,
        query: Query,
        or_replace: bool,
    },
    /// `UPDATE table SET col = expr, ... [WHERE pred]`.
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        name: String,
        if_exists: bool,
    },
    /// `SWAP COLUMN t1.c1 WITH t2.c2` — the column-swap extension
    /// (Section 5.4): a schema-level pointer swap between two tables.
    SwapColumn {
        table_a: String,
        column_a: String,
        table_b: String,
        column_b: String,
    },
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::CreateTableAs {
                name,
                query,
                or_replace,
            } => {
                if *or_replace {
                    write!(f, "CREATE OR REPLACE TABLE {name} AS {query}")
                } else {
                    write!(f, "CREATE TABLE {name} AS {query}")
                }
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::DropTable { name, if_exists } => {
                if *if_exists {
                    write!(f, "DROP TABLE IF EXISTS {name}")
                } else {
                    write!(f, "DROP TABLE {name}")
                }
            }
            Statement::SwapColumn {
                table_a,
                column_a,
                table_b,
                column_b,
            } => write!(
                f,
                "SWAP COLUMN {table_a}.{column_a} WITH {table_b}.{column_b}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_arithmetic_with_parens() {
        // (a + b) * c must keep parens; a + b * c must not add them.
        let e = Expr::mul(Expr::add(Expr::col("a"), Expr::col("b")), Expr::col("c"));
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = Expr::add(Expr::col("a"), Expr::mul(Expr::col("b"), Expr::col("c")));
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn prints_non_associative_right_parens() {
        let e = Expr::sub(Expr::col("a"), Expr::sub(Expr::col("b"), Expr::col("c")));
        assert_eq!(e.to_string(), "a - (b - c)");
        let e = Expr::sub(Expr::sub(Expr::col("a"), Expr::col("b")), Expr::col("c"));
        assert_eq!(e.to_string(), "a - b - c");
    }

    #[test]
    fn prints_window_sum() {
        let e = Expr::WindowSum {
            arg: Box::new(Expr::col("c")),
            order_by: Box::new(Expr::col("a")),
        };
        assert_eq!(e.to_string(), "SUM(c) OVER (ORDER BY a)");
    }

    #[test]
    fn prints_case() {
        let e = Expr::Case {
            whens: vec![(Expr::eq(Expr::col("a"), Expr::int(1)), Expr::float(2.5))],
            else_expr: Some(Box::new(Expr::int(0))),
        };
        assert_eq!(e.to_string(), "CASE WHEN a = 1 THEN 2.5 ELSE 0 END");
    }

    #[test]
    fn prints_full_query() {
        let q = Query {
            items: vec![
                SelectItem::new(Expr::col("a")),
                SelectItem::aliased(Expr::sum(Expr::col("s")), "s"),
            ],
            from: Some(TableRef::named("r")),
            joins: vec![Join {
                kind: JoinKind::Inner,
                table: TableRef::named("t"),
                using: vec!["a".into()],
                on: None,
            }],
            where_clause: Some(Expr::binary(BinaryOp::Gt, Expr::col("d"), Expr::int(1))),
            group_by: vec![Expr::col("a")],
            order_by: vec![OrderByItem {
                expr: Expr::col("s"),
                desc: true,
            }],
            limit: Some(1),
        };
        assert_eq!(
            q.to_string(),
            "SELECT a, SUM(s) AS s FROM r JOIN t USING (a) WHERE d > 1 GROUP BY a ORDER BY s DESC LIMIT 1"
        );
    }

    #[test]
    fn prints_statements() {
        let s = Statement::SwapColumn {
            table_a: "f".into(),
            column_a: "s".into(),
            table_b: "f_new".into(),
            column_b: "s".into(),
        };
        assert_eq!(s.to_string(), "SWAP COLUMN f.s WITH f_new.s");
        let s = Statement::DropTable {
            name: "m1".into(),
            if_exists: true,
        };
        assert_eq!(s.to_string(), "DROP TABLE IF EXISTS m1");
    }

    #[test]
    fn string_literal_escaping() {
        assert_eq!(Expr::str("it's").to_string(), "'it''s'");
    }

    #[test]
    fn float_literal_keeps_point() {
        assert_eq!(Expr::float(2.0).to_string(), "2.0");
    }

    #[test]
    fn and_all_folds() {
        assert_eq!(Expr::and_all(vec![]), None);
        let e = Expr::and_all(vec![Expr::col("a"), Expr::col("b"), Expr::col("c")]).unwrap();
        assert_eq!(e.to_string(), "a AND b AND c");
    }
}
