//! Tokenizer for the JoinBoost SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or bare identifier (keywords are resolved by the parser;
    /// the lexer stores the uppercased form for keywords-insensitivity and
    /// the original form for identifiers).
    Word(String),
    /// `"quoted identifier"`.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `'string literal'`.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    /// `<>` or `!=`.
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::QuotedIdent(w) => write!(f, "\"{w}\""),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Semicolon => f.write_str(";"),
        }
    }
}

/// Tokenization error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector of tokens.
///
/// Supports `--` line comments, single-quoted strings with `''` escapes and
/// case-insensitive identifiers (identifiers are kept as written; keyword
/// matching is done case-insensitively by the parser).
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::with_capacity(input.len() / 4);
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'.' if !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                tokens.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Neq);
                i += 2;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        offset: i,
                        message: "unterminated quoted identifier".into(),
                    });
                }
                tokens.push(Token::QuotedIdent(input[start..j].to_string()));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            b'.' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'$')
                {
                    j += 1;
                }
                tokens.push(Token::Word(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Advance one full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(LexError {
        offset: start,
        message: "unterminated string literal".into(),
    })
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut j = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while j < bytes.len() {
        match bytes[j] {
            b'0'..=b'9' => j += 1,
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                j += 1;
            }
            b'e' | b'E' if !saw_exp => {
                saw_exp = true;
                j += 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..j];
    if saw_dot || saw_exp {
        let v: f64 = text.parse().map_err(|e| LexError {
            offset: start,
            message: format!("bad float literal {text:?}: {e}"),
        })?;
        Ok((Token::Float(v), j))
    } else {
        let v: i64 = text.parse().map_err(|e| LexError {
            offset: start,
            message: format!("bad integer literal {text:?}: {e}"),
        })?;
        Ok((Token::Int(v), j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_select() {
        let toks = tokenize("SELECT a, SUM(b) FROM t WHERE c >= 1.5").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(1.5)));
    }

    #[test]
    fn lexes_operators() {
        let toks = tokenize("a <> b != c <= d >= e < f > g = h").unwrap();
        let ops: Vec<_> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Word(_)))
            .cloned()
            .collect();
        assert_eq!(
            ops,
            vec![
                Token::Neq,
                Token::Neq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt,
                Token::Eq
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn lexes_comments() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn lexes_scientific_notation() {
        let toks = tokenize("1e3 2.5E-2").unwrap();
        assert_eq!(toks, vec![Token::Float(1e3), Token::Float(2.5e-2)]);
    }

    #[test]
    fn lexes_qualified_column() {
        let toks = tokenize("f.col_1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("f".into()),
                Token::Dot,
                Token::Word("col_1".into())
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn lexes_quoted_identifier() {
        let toks = tokenize("\"weird name\"").unwrap();
        assert_eq!(toks, vec![Token::QuotedIdent("weird name".into())]);
    }
}
