//! Recursive-descent / Pratt parser for the JoinBoost SQL subset.

use std::fmt;

use crate::ast::{
    BinaryOp, Expr, Join, JoinKind, OrderByItem, Query, SelectItem, Statement, TableRef, UnaryOp,
    Value,
};
use crate::token::{tokenize, LexError, Token};

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    /// Token index where the error occurred (for diagnostics).
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
            position: 0,
        }
    }
}

/// Parse a single SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `SELECT` query.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(sql)?;
    let q = p.query()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(q)
}

/// Parse a scalar expression (useful for tests and the predicate API).
pub fn parse_expr(sql: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(sql)?;
    let e = p.expr(0)?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            position: self.pos,
        })
    }

    /// Does the next token equal the given keyword (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}, found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek()))
        }
    }

    fn skip_semicolons(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Word(w)) => {
                if is_reserved(&w) {
                    self.err(format!("reserved word {w} used as identifier"))
                } else {
                    Ok(w)
                }
            }
            Some(Token::QuotedIdent(w)) => Ok(w),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.query()?));
        }
        if self.eat_kw("CREATE") {
            let or_replace = if self.eat_kw("OR") {
                self.expect_kw("REPLACE")?;
                true
            } else {
                false
            };
            self.expect_kw("TABLE")?;
            let name = self.identifier()?;
            self.expect_kw("AS")?;
            let query = self.query()?;
            return Ok(Statement::CreateTableAs {
                name,
                query,
                or_replace,
            });
        }
        if self.eat_kw("UPDATE") {
            let table = self.identifier()?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.identifier()?;
                self.expect(&Token::Eq)?;
                let e = self.expr(0)?;
                assignments.push((col, e));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.expr(0)?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                where_clause,
            });
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("SWAP") {
            self.expect_kw("COLUMN")?;
            let table_a = self.identifier()?;
            self.expect(&Token::Dot)?;
            let column_a = self.identifier()?;
            self.expect_kw("WITH")?;
            let table_b = self.identifier()?;
            self.expect(&Token::Dot)?;
            let column_b = self.identifier()?;
            return Ok(Statement::SwapColumn {
                table_a,
                column_a,
                table_b,
                column_b,
            });
        }
        self.err(format!("expected statement, found {:?}", self.peek()))
    }

    // ---- queries --------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            let expr = self.expr(0)?;
            let alias = if self.eat_kw("AS") {
                Some(self.identifier()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") {
            Some(self.table_ref()?)
        } else {
            None
        };
        let mut joins = Vec::new();
        loop {
            let kind = if self.peek_kw("JOIN") || self.peek_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek_kw("LEFT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.peek_kw("SEMI") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Semi
            } else if self.peek_kw("FULL") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Full
            } else {
                break;
            };
            let table = self.table_ref()?;
            let mut using = Vec::new();
            let mut on = None;
            if self.eat_kw("USING") {
                self.expect(&Token::LParen)?;
                loop {
                    using.push(self.identifier()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            if self.eat_kw("ON") {
                on = Some(self.expr(0)?);
            }
            joins.push(Join {
                kind,
                table,
                using,
                on,
            });
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr(0)?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr(0)?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(v)) if v >= 0 => Some(v as u64),
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.eat(&Token::LParen) {
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            let has_alias =
                self.eat_kw("AS") || matches!(self.peek(), Some(Token::Word(w)) if !is_reserved(w));
            let alias = if has_alias {
                Some(self.identifier()?)
            } else {
                None
            };
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.identifier()?;
        let has_alias =
            self.eat_kw("AS") || matches!(self.peek(), Some(Token::Word(w)) if !is_reserved(w));
        let alias = if has_alias {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions (Pratt) ---------------------------------------------

    fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.prefix()?;
        loop {
            // Postfix predicates: IS [NOT] NULL, [NOT] IN (...). These bind
            // at comparison precedence (3).
            if min_prec <= 3 {
                if self.peek_kw("IS") {
                    self.pos += 1;
                    let negated = self.eat_kw("NOT");
                    self.expect_kw("NULL")?;
                    lhs = Expr::IsNull {
                        expr: Box::new(lhs),
                        negated,
                    };
                    continue;
                }
                let negated_in = if self.peek_kw("NOT") {
                    // Lookahead for NOT IN; bare NOT here is invalid anyway.
                    matches!(self.tokens.get(self.pos + 1), Some(Token::Word(w)) if w.eq_ignore_ascii_case("IN"))
                } else {
                    false
                };
                if negated_in || self.peek_kw("IN") {
                    if negated_in {
                        self.pos += 1; // NOT
                    }
                    self.expect_kw("IN")?;
                    self.expect(&Token::LParen)?;
                    if self.peek_kw("SELECT") {
                        let q = self.query()?;
                        self.expect(&Token::RParen)?;
                        lhs = Expr::InSubquery {
                            expr: Box::new(lhs),
                            query: Box::new(q),
                            negated: negated_in,
                        };
                    } else {
                        let mut list = Vec::new();
                        loop {
                            list.push(self.expr(0)?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                        lhs = Expr::InList {
                            expr: Box::new(lhs),
                            list,
                            negated: negated_in,
                        };
                    }
                    continue;
                }
            }
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Eq) => BinaryOp::Eq,
                Some(Token::Neq) => BinaryOp::Neq,
                Some(Token::Lt) => BinaryOp::Lt,
                Some(Token::LtEq) => BinaryOp::LtEq,
                Some(Token::Gt) => BinaryOp::Gt,
                Some(Token::GtEq) => BinaryOp::GtEq,
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("AND") => BinaryOp::And,
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OR") => BinaryOp::Or,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            // Left-associative: parse the right side at prec + 1.
            let rhs = self.expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Minus) => {
                self.pos += 1;
                let e = self.expr(6)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(e),
                })
            }
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Expr::Wildcard)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("NOT") => {
                self.pos += 1;
                // NOT binds looser than comparisons but tighter than AND.
                let e = self.expr(3)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(e),
                })
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("CASE") => {
                self.pos += 1;
                let mut whens = Vec::new();
                while self.eat_kw("WHEN") {
                    let cond = self.expr(0)?;
                    self.expect_kw("THEN")?;
                    let then = self.expr(0)?;
                    whens.push((cond, then));
                }
                if whens.is_empty() {
                    return self.err("CASE requires at least one WHEN");
                }
                let else_expr = if self.eat_kw("ELSE") {
                    Some(Box::new(self.expr(0)?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                Ok(Expr::Case { whens, else_expr })
            }
            Some(Token::Word(w)) => {
                if is_reserved(&w) {
                    return self.err(format!("unexpected keyword {w}"));
                }
                self.pos += 1;
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr(0)?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    let name = w.to_ascii_uppercase();
                    // Window form: SUM(x) OVER (ORDER BY a)
                    if self.eat_kw("OVER") {
                        if name != "SUM" || args.len() != 1 {
                            return self.err("only SUM(expr) OVER (ORDER BY key) is supported");
                        }
                        self.expect(&Token::LParen)?;
                        self.expect_kw("ORDER")?;
                        self.expect_kw("BY")?;
                        let order_by = self.expr(0)?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::WindowSum {
                            arg: Box::new(args.into_iter().next().expect("one arg")),
                            order_by: Box::new(order_by),
                        });
                    }
                    return Ok(Expr::Func { name, args });
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let name = self.identifier()?;
                    return Ok(Expr::Column {
                        table: Some(w),
                        name,
                    });
                }
                Ok(Expr::Column {
                    table: None,
                    name: w,
                })
            }
            Some(Token::QuotedIdent(w)) => {
                self.pos += 1;
                if self.eat(&Token::Dot) {
                    let name = self.identifier()?;
                    return Ok(Expr::Column {
                        table: Some(w),
                        name,
                    });
                }
                Ok(Expr::Column {
                    table: None,
                    name: w,
                })
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Reserved words that may not be used as bare identifiers.
fn is_reserved(w: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT",
        "SEMI", "FULL", "OUTER", "ON", "USING", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL",
        "CASE", "WHEN", "THEN", "ELSE", "END", "CREATE", "REPLACE", "TABLE", "UPDATE", "SET",
        "DROP", "IF", "EXISTS", "SWAP", "COLUMN", "WITH", "OVER", "DESC", "ASC",
    ];
    RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_stmt(sql: &str) {
        let s1 = parse_statement(sql).unwrap();
        let printed = s1.to_string();
        let s2 = parse_statement(&printed).unwrap();
        assert_eq!(s1, s2, "roundtrip failed for {sql}\nprinted: {printed}");
    }

    #[test]
    fn parses_paper_example_2_split_query() {
        // The best-split query from Example 2 of the paper (with constants
        // interpolated, as JoinBoost does).
        let sql = "SELECT A, -(100.0/8.0) * 100.0 + (s/c) * s \
                   + (100.0 - s)/(8.0 - c) * (100.0 - s) AS criteria \
                   FROM (SELECT A, SUM(c) OVER(ORDER BY A) as c, SUM(s) OVER(ORDER BY A) as s \
                   FROM (SELECT A, sum(Y) as s, COUNT(*) as c FROM R GROUP BY A) AS g) AS w \
                   ORDER BY criteria DESC LIMIT 1";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.items[1].alias.as_deref(), Some("criteria"));
        assert_eq!(q.limit, Some(1));
        roundtrip_stmt(sql);
    }

    #[test]
    fn parses_update_with_semijoin_predicate() {
        let sql = "UPDATE F SET s = s - 2.5 * c WHERE F.a1 IN (SELECT a1 FROM m1) AND F.a2 IN (SELECT a2 FROM m2)";
        let s = parse_statement(sql).unwrap();
        match &s {
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                assert_eq!(table, "F");
                assert_eq!(assignments.len(), 1);
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        roundtrip_stmt(sql);
    }

    #[test]
    fn parses_create_table_as_with_case() {
        let sql = "CREATE TABLE F_updated AS SELECT \
                   CASE WHEN F.a IN (SELECT a FROM m) THEN s - 1.5 * c ELSE s END AS s, c \
                   FROM F";
        roundtrip_stmt(sql);
    }

    #[test]
    fn parses_joins() {
        let sql = "SELECT a FROM r JOIN s USING (a) LEFT JOIN t USING (a, b) SEMI JOIN u USING (c)";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.joins.len(), 3);
        assert_eq!(q.joins[0].kind, JoinKind::Inner);
        assert_eq!(q.joins[1].kind, JoinKind::Left);
        assert_eq!(q.joins[1].using, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(q.joins[2].kind, JoinKind::Semi);
        roundtrip_stmt(sql);
    }

    #[test]
    fn parses_not_in_and_is_null() {
        let sql = "SELECT a FROM r WHERE a NOT IN (1, 2, 3) AND b IS NOT NULL AND c IS NULL";
        roundtrip_stmt(sql);
    }

    #[test]
    fn parses_swap_column() {
        let s = parse_statement("SWAP COLUMN f.s WITH f_new.s").unwrap();
        assert_eq!(
            s,
            Statement::SwapColumn {
                table_a: "f".into(),
                column_a: "s".into(),
                table_b: "f_new".into(),
                column_b: "s".into(),
            }
        );
    }

    #[test]
    fn parses_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::add(Expr::int(1), Expr::mul(Expr::int(2), Expr::int(3)))
        );
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(
            e,
            Expr::mul(Expr::add(Expr::int(1), Expr::int(2)), Expr::int(3))
        );
        let e = parse_expr("a = 1 AND b = 2 OR c = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_unary_not_and_neg() {
        let sql = "SELECT a FROM r WHERE NOT a > 1 AND -b < 2";
        roundtrip_stmt(sql);
        let e = parse_expr("NOT a > 1").unwrap();
        match e {
            Expr::Unary {
                op: UnaryOp::Not, ..
            } => {}
            other => panic!("expected NOT at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_count_star_and_aggregates() {
        let q = parse_query("SELECT COUNT(*) AS c, SUM(y) AS s, SUM(y * y) AS q FROM r").unwrap();
        assert_eq!(q.items.len(), 3);
        assert_eq!(q.items[0].expr, Expr::count_star());
    }

    #[test]
    fn parses_drop_if_exists() {
        roundtrip_stmt("DROP TABLE IF EXISTS jb_tmp_msg_3");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT 1 extra garbage ,").is_err());
    }

    #[test]
    fn parses_subquery_alias_without_as() {
        let q = parse_query("SELECT a FROM (SELECT a FROM r) sub").unwrap();
        match q.from.unwrap() {
            TableRef::Subquery { alias, .. } => assert_eq!(alias.as_deref(), Some("sub")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_order_by_asc_desc() {
        let q = parse_query("SELECT a FROM r ORDER BY a ASC, b DESC").unwrap();
        assert!(!q.order_by[0].desc);
        assert!(q.order_by[1].desc);
    }

    #[test]
    fn parses_full_outer_join() {
        let q = parse_query("SELECT a FROM r FULL OUTER JOIN s USING (a)").unwrap();
        assert_eq!(q.joins[0].kind, JoinKind::Full);
    }
}
