//! SQL subset for JoinBoost.
//!
//! JoinBoost (VLDB 2023) compiles tree-model training into "standard
//! non-nested SPJA queries with simple algebra expressions" so that it is
//! portable to any DBMS. This crate defines exactly that subset:
//!
//! * `SELECT` with projections, scalar expressions and aggregates,
//! * `FROM` over base tables or one level of derived tables,
//! * `JOIN` (inner, left outer, semi) with `USING`/`ON` conditions,
//! * `WHERE`, `GROUP BY` (zero or one grouping key in generated queries,
//!   though the grammar allows more), `ORDER BY`, `LIMIT`,
//! * window prefix sums `SUM(x) OVER (ORDER BY a)` used for numeric splits,
//! * `CASE WHEN`, `IN (SELECT ..)` semi-join predicates,
//! * `CREATE TABLE .. AS`, `UPDATE .. SET`, `DROP TABLE`,
//! * a `SWAP COLUMN` statement modelling the <100-LOC column-swap extension
//!   the paper adds to DuckDB for O(1) residual updates.
//!
//! The crate provides a tokenizer ([`token`]), an AST ([`ast`]), a
//! recursive-descent / Pratt parser ([`parser`]) and a printer (`Display`
//! impls on the AST) such that `parse(print(q)) == q`.

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    BinaryOp, Expr, Join, JoinKind, OrderByItem, Query, SelectItem, Statement, TableRef, UnaryOp,
    Value,
};
pub use parser::{parse_expr, parse_query, parse_statement, ParseError};

/// Convenience: parse a single statement from a SQL string.
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    parse_statement(sql)
}
