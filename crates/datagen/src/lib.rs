//! Synthetic workload generators for the JoinBoost reproduction.
//!
//! The paper evaluates on Favorita, TPC-DS/TPC-H and IMDB. Those datasets
//! are not redistributable at full scale, so this crate generates
//! scaled-down synthetic databases with the same schema *shapes*,
//! key-cardinality structure and target-imputation procedure the paper
//! describes (Section 6, "Preprocess"):
//!
//! * [`favorita()`](favorita::favorita) — a Favorita-like star schema: one `sales` fact table
//!   with N-to-1 edges to 5 small dimensions, one imputed feature
//!   (uniform in `[1, 1000]`) per dimension, and the target imputed as
//!   `y = f_item·log(f_items) + log(f_oil) − 10·f_dates − 10·f_stores
//!   + f_trans²` (paper footnote 7) plus noise;
//! * [`tpcds`] / [`tpch`] — snowflake schemas with a scale factor
//!   controlling the fact cardinality (TPC-DS-like has a deeper
//!   dimension chain; TPC-H-like has two *large* dimensions, the property
//!   that makes TPC-H slower for message passing, Appendix C.1);
//! * [`imdb`] — an IMDB-like galaxy schema: multiple fact tables with
//!   M-N relationships, forming the 2-cluster miniature of the paper's
//!   Figure 3;
//! * [`fig5`] — the synthetic fact table `F(s, d, c1..ck)` of the
//!   residual-update pilot study (Section 5.3.2).
//!
//! All generators are deterministic given a seed.

pub mod favorita;
pub mod fig5;
pub mod imdb;
pub mod tpc;

pub use favorita::{favorita, FavoritaConfig};
pub use fig5::{fig5_fact_table, Fig5Config};
pub use imdb::{imdb_galaxy, ImdbConfig};
pub use tpc::{tpcds, tpch, TpcConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG helper shared by the generators.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform integer feature in `[1, hi]` (the paper imputes `[1, 1000]`).
pub(crate) fn imputed_feature(rng: &mut StdRng, hi: i64) -> i64 {
    rng.random_range(1..=hi)
}
