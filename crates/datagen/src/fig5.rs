//! The residual-update microbenchmark workload (paper Section 5.3.2,
//! Figure 5): a synthetic fact table `F(s, d, c1..ck)` and per-leaf
//! semi-join messages `m_i(d)` covering disjoint ranges of the join key.

use joinboost_engine::{Column, Table};
use rand::Rng;

use crate::rng;

/// Configuration for the Figure-5 workload.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Fact rows (paper: 100 M; scaled down by default).
    pub rows: usize,
    /// Join-key domain (paper: `d ∈ [1, 10K]`).
    pub key_domain: i64,
    /// Extra payload columns `c1..ck` duplicated by CREATE-style updates.
    pub extra_columns: usize,
    /// Simulated tree leaves (paper: 8).
    pub num_leaves: usize,
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            rows: 100_000,
            key_domain: 10_000,
            extra_columns: 0,
            num_leaves: 8,
            seed: 42,
        }
    }
}

/// Build the fact table `F(s, d, c1..ck)`.
pub fn fig5_fact_table(cfg: &Fig5Config) -> Table {
    let mut r = rng(cfg.seed);
    let s: Vec<f64> = (0..cfg.rows).map(|_| r.random::<f64>() * 100.0).collect();
    let d: Vec<i64> = (0..cfg.rows)
        .map(|_| r.random_range(1..=cfg.key_domain))
        .collect();
    let mut t = Table::from_columns(vec![("s", Column::float(s)), ("d", Column::int(d))]);
    for k in 0..cfg.extra_columns {
        let c: Vec<f64> = (0..cfg.rows).map(|_| r.random::<f64>()).collect();
        t.push_column(
            joinboost_engine::table::ColumnMeta::new(format!("c{}", k + 1)),
            Column::float(c),
        );
    }
    t
}

/// Per-leaf semi-join messages: leaf `i` (1-based) matches key values in
/// `(range·(i−1), range·i]` where `range = key_domain / num_leaves`.
pub fn fig5_messages(cfg: &Fig5Config) -> Vec<Table> {
    let range = cfg.key_domain / cfg.num_leaves as i64;
    (0..cfg.num_leaves)
        .map(|i| {
            let lo = range * i as i64 + 1;
            let hi = range * (i as i64 + 1);
            Table::from_columns(vec![("d", Column::int((lo..=hi).collect()))])
        })
        .collect()
}

/// Random leaf predictions, one per leaf.
pub fn fig5_leaf_predictions(cfg: &Fig5Config) -> Vec<f64> {
    let mut r = rng(cfg.seed.wrapping_add(1));
    (0..cfg.num_leaves).map(|_| r.random::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_table_shape() {
        let cfg = Fig5Config {
            rows: 1000,
            extra_columns: 5,
            ..Default::default()
        };
        let t = fig5_fact_table(&cfg);
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.num_columns(), 7);
        let d = t.column(None, "d").unwrap();
        for i in 0..d.len() {
            let v = d.get(i).as_i64().unwrap();
            assert!((1..=cfg.key_domain).contains(&v));
        }
    }

    #[test]
    fn messages_partition_the_key_domain() {
        let cfg = Fig5Config::default();
        let msgs = fig5_messages(&cfg);
        assert_eq!(msgs.len(), 8);
        let total: usize = msgs.iter().map(Table::num_rows).sum();
        assert_eq!(total, cfg.key_domain as usize);
        // Disjoint ranges.
        assert_eq!(msgs[0].columns[0].get(0).as_i64(), Some(1));
        assert_eq!(
            msgs[1].columns[0].get(0).as_i64(),
            Some(cfg.key_domain / 8 + 1)
        );
    }

    #[test]
    fn predictions_per_leaf() {
        let cfg = Fig5Config::default();
        assert_eq!(fig5_leaf_predictions(&cfg).len(), cfg.num_leaves);
    }
}
