//! TPC-DS-like and TPC-H-like snowflake generators (scale-factor sweeps
//! for Figures 11–13 and Appendix C.1 / Figure 17).

use joinboost_engine::{Column, Table};
use joinboost_graph::JoinGraph;
use rand::Rng;

use crate::favorita::Generated;
use crate::{imputed_feature, rng};

/// Scale configuration. `scale_factor = 1.0` ≈ `base_fact_rows` fact rows;
/// the paper sweeps SF 10→1000 on real TPC data, we sweep proportionally
/// smaller synthetic data (documented in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct TpcConfig {
    pub scale_factor: f64,
    /// Fact rows at SF = 1.
    pub base_fact_rows: usize,
    pub seed: u64,
}

impl Default for TpcConfig {
    fn default() -> Self {
        TpcConfig {
            scale_factor: 1.0,
            base_fact_rows: 5_000,
            seed: 42,
        }
    }
}

fn dim_table(r: &mut rand::rngs::StdRng, key: &str, feats: &[&str], rows: usize) -> Table {
    let mut t = Table::from_columns(vec![(key, Column::int((0..rows as i64).collect()))]);
    for f in feats {
        let vals: Vec<i64> = (0..rows).map(|_| imputed_feature(r, 1000)).collect();
        t.push_column(
            joinboost_engine::table::ColumnMeta::new(f.to_string()),
            Column::int(vals),
        );
    }
    t
}

/// TPC-DS-like snowflake: `store_sales` fact with small dimensions
/// (`date_dim` chaining to `holiday_dim`, plus `item`, `store`,
/// `customer` chaining to `demographics`). Deep N-to-1 chains are what
/// make this a *snowflake* rather than a plain star.
pub fn tpcds(cfg: &TpcConfig) -> Generated {
    let mut r = rng(cfg.seed);
    let n = ((cfg.base_fact_rows as f64) * cfg.scale_factor).round() as usize;
    let n = n.max(10);
    let dn = 200usize;
    let chain = 50usize;
    let mut tables = Vec::new();
    // date_dim → holiday_dim chain.
    let mut date_dim = dim_table(&mut r, "date_id", &["f_date"], dn);
    date_dim.push_column(
        joinboost_engine::table::ColumnMeta::new("holiday_id"),
        Column::int((0..dn).map(|i| (i % chain) as i64).collect()),
    );
    tables.push(("date_dim".to_string(), date_dim));
    tables.push((
        "holiday_dim".to_string(),
        dim_table(&mut r, "holiday_id", &["f_holiday"], chain),
    ));
    tables.push((
        "item".to_string(),
        dim_table(&mut r, "item_id", &["f_item"], dn),
    ));
    tables.push((
        "store".to_string(),
        dim_table(&mut r, "store_id", &["f_store"], dn),
    ));
    let mut customer = dim_table(&mut r, "customer_id", &["f_customer"], dn);
    customer.push_column(
        joinboost_engine::table::ColumnMeta::new("demo_id"),
        Column::int((0..dn).map(|i| (i % chain) as i64).collect()),
    );
    tables.push(("customer".to_string(), customer));
    tables.push((
        "demographics".to_string(),
        dim_table(&mut r, "demo_id", &["f_demo"], chain),
    ));
    // Fact.
    let mut cols: Vec<Vec<i64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
    let mut y = Vec::with_capacity(n);
    let lookup = |tables: &[(String, Table)], name: &str, key: usize, feat: &str| -> f64 {
        let t = &tables.iter().find(|(n, _)| n == name).expect("table").1;
        let c = t.column(None, feat).expect("feature");
        c.f64_at(key).expect("valid")
    };
    for _ in 0..n {
        let d = r.random_range(0..dn);
        let i = r.random_range(0..dn);
        let s = r.random_range(0..dn);
        let c = r.random_range(0..dn);
        cols[0].push(d as i64);
        cols[1].push(i as i64);
        cols[2].push(s as i64);
        cols[3].push(c as i64);
        let f_date = lookup(&tables, "date_dim", d, "f_date");
        let f_item = lookup(&tables, "item", i, "f_item");
        let f_store = lookup(&tables, "store", s, "f_store");
        let f_cust = lookup(&tables, "customer", c, "f_customer");
        y.push(2.0 * f_item - f_store + 0.5 * f_cust + f_date.ln() * 10.0 + r.random::<f64>());
    }
    let fact = Table::from_columns(vec![
        ("date_id", Column::int(std::mem::take(&mut cols[0]))),
        ("item_id", Column::int(std::mem::take(&mut cols[1]))),
        ("store_id", Column::int(std::mem::take(&mut cols[2]))),
        ("customer_id", Column::int(std::mem::take(&mut cols[3]))),
        ("net_paid", Column::float(y)),
    ]);
    tables.push(("store_sales".to_string(), fact));

    let mut graph = JoinGraph::new();
    graph.add_relation("store_sales", &[]).expect("fresh");
    graph.add_relation("date_dim", &["f_date"]).expect("fresh");
    graph
        .add_relation("holiday_dim", &["f_holiday"])
        .expect("fresh");
    graph.add_relation("item", &["f_item"]).expect("fresh");
    graph.add_relation("store", &["f_store"]).expect("fresh");
    graph
        .add_relation("customer", &["f_customer"])
        .expect("fresh");
    graph
        .add_relation("demographics", &["f_demo"])
        .expect("fresh");
    graph
        .add_edge("store_sales", "date_dim", &["date_id"])
        .expect("rels");
    graph
        .add_edge("date_dim", "holiday_dim", &["holiday_id"])
        .expect("rels");
    graph
        .add_edge("store_sales", "item", &["item_id"])
        .expect("rels");
    graph
        .add_edge("store_sales", "store", &["store_id"])
        .expect("rels");
    graph
        .add_edge("store_sales", "customer", &["customer_id"])
        .expect("rels");
    graph
        .add_edge("customer", "demographics", &["demo_id"])
        .expect("rels");
    Generated {
        tables,
        graph,
        target_relation: "store_sales".to_string(),
        target_column: "net_paid".to_string(),
    }
}

/// TPC-H-like snowflake: `lineitem` fact with two *large* dimensions
/// (`orders` at n/4 rows, `partsupp` at n/5) plus a small `supplier`.
/// Large dimensions make fact-side messages expensive — the property the
/// paper observes slows TPC-H (Appendix C.1).
pub fn tpch(cfg: &TpcConfig) -> Generated {
    let mut r = rng(cfg.seed);
    let n = (((cfg.base_fact_rows as f64) * cfg.scale_factor).round() as usize).max(20);
    let orders_n = (n / 4).max(2);
    let ps_n = (n / 5).max(2);
    let supp_n = 50usize;
    let mut tables = Vec::new();
    tables.push((
        "orders".to_string(),
        dim_table(&mut r, "order_id", &["f_order"], orders_n),
    ));
    tables.push((
        "partsupp".to_string(),
        dim_table(&mut r, "ps_id", &["f_ps"], ps_n),
    ));
    tables.push((
        "supplier".to_string(),
        dim_table(&mut r, "supp_id", &["f_supp"], supp_n),
    ));
    let mut ok = Vec::with_capacity(n);
    let mut pk = Vec::with_capacity(n);
    let mut sk = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let feat = |tables: &[(String, Table)], name: &str, key: usize, f: &str| -> f64 {
        tables
            .iter()
            .find(|(n, _)| n == name)
            .expect("table")
            .1
            .column(None, f)
            .expect("feature")
            .f64_at(key)
            .expect("valid")
    };
    for _ in 0..n {
        let o = r.random_range(0..orders_n);
        let p = r.random_range(0..ps_n);
        let s = r.random_range(0..supp_n);
        ok.push(o as i64);
        pk.push(p as i64);
        sk.push(s as i64);
        let fo = feat(&tables, "orders", o, "f_order");
        let fp = feat(&tables, "partsupp", p, "f_ps");
        let fs = feat(&tables, "supplier", s, "f_supp");
        y.push(fo - 0.5 * fp + 3.0 * fs + r.random::<f64>());
    }
    let fact = Table::from_columns(vec![
        ("order_id", Column::int(ok)),
        ("ps_id", Column::int(pk)),
        ("supp_id", Column::int(sk)),
        ("extendedprice", Column::float(y)),
    ]);
    tables.push(("lineitem".to_string(), fact));
    let mut graph = JoinGraph::new();
    graph.add_relation("lineitem", &[]).expect("fresh");
    graph.add_relation("orders", &["f_order"]).expect("fresh");
    graph.add_relation("partsupp", &["f_ps"]).expect("fresh");
    graph.add_relation("supplier", &["f_supp"]).expect("fresh");
    graph
        .add_edge("lineitem", "orders", &["order_id"])
        .expect("rels");
    graph
        .add_edge("lineitem", "partsupp", &["ps_id"])
        .expect("rels");
    graph
        .add_edge("lineitem", "supplier", &["supp_id"])
        .expect("rels");
    Generated {
        tables,
        graph,
        target_relation: "lineitem".to_string(),
        target_column: "extendedprice".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcds_scales_with_sf() {
        let small = tpcds(&TpcConfig {
            scale_factor: 1.0,
            base_fact_rows: 1000,
            seed: 1,
        });
        let big = tpcds(&TpcConfig {
            scale_factor: 3.0,
            base_fact_rows: 1000,
            seed: 1,
        });
        assert_eq!(small.table("store_sales").unwrap().num_rows(), 1000);
        assert_eq!(big.table("store_sales").unwrap().num_rows(), 3000);
    }

    #[test]
    fn tpcds_is_snowflake_with_chains() {
        let g = tpcds(&TpcConfig::default());
        let fact = g.graph.rel_id("store_sales").unwrap();
        assert_eq!(g.graph.snowflake_fact(), Some(fact));
        assert_eq!(g.graph.num_relations(), 7);
        assert_eq!(g.graph.all_features().len(), 6);
        // Chained keys resolve.
        let dd = g.table("date_dim").unwrap();
        assert!(dd.resolve(None, "holiday_id").is_ok());
    }

    #[test]
    fn tpch_has_large_dimensions() {
        let g = tpch(&TpcConfig {
            scale_factor: 1.0,
            base_fact_rows: 4000,
            seed: 2,
        });
        assert_eq!(g.table("lineitem").unwrap().num_rows(), 4000);
        assert_eq!(g.table("orders").unwrap().num_rows(), 1000);
        assert_eq!(g.table("partsupp").unwrap().num_rows(), 800);
        assert_eq!(g.graph.snowflake_fact(), Some(0));
    }
}
