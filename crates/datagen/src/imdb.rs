//! IMDB-like galaxy schema (paper Figure 3 / Section 6.2).
//!
//! Multiple fact tables with M-N relationships through shared dimensions:
//! materializing the full join is prohibitive (the real IMDB join exceeds
//! 1 TB from 1.2 GB of base data), which is exactly why gradient boosting
//! needs Clustered Predicate Trees here.

use joinboost_engine::{Column, Table};
use joinboost_graph::JoinGraph;
use rand::Rng;

use crate::favorita::Generated;
use crate::{imputed_feature, rng};

/// Configuration for the IMDB-like galaxy.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    pub persons: usize,
    pub movies: usize,
    /// Rows in the `cast_info` fact (holds the target).
    pub cast_rows: usize,
    /// Rows in the `person_info` fact (several per person).
    pub person_info_rows: usize,
    /// Rows in the `movie_info` fact (several per movie).
    pub movie_info_rows: usize,
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            persons: 100,
            movies: 80,
            cast_rows: 4_000,
            person_info_rows: 400,
            movie_info_rows: 300,
            seed: 42,
        }
    }
}

/// Generate the galaxy. Relations:
///
/// * `person(person_id, gender)` — shared dimension,
/// * `movie(movie_id, year)` — shared dimension,
/// * `cast_info(person_id, movie_id, role, rating)` — fact, target
///   `rating`,
/// * `person_info(person_id, age)` — fact (M rows per person),
/// * `movie_info(movie_id, budget)` — fact (M rows per movie).
///
/// Clusters (CPT): `{cast_info, person, movie}`, `{person_info, person}`,
/// `{movie_info, movie}`.
pub fn imdb_galaxy(cfg: &ImdbConfig) -> Generated {
    let mut r = rng(cfg.seed);
    let mut tables = Vec::new();
    let genders: Vec<i64> = (0..cfg.persons).map(|_| r.random_range(0..2)).collect();
    tables.push((
        "person".to_string(),
        Table::from_columns(vec![
            ("person_id", Column::int((0..cfg.persons as i64).collect())),
            ("gender", Column::int(genders.clone())),
        ]),
    ));
    let years: Vec<i64> = (0..cfg.movies)
        .map(|_| r.random_range(1950..2023))
        .collect();
    tables.push((
        "movie".to_string(),
        Table::from_columns(vec![
            ("movie_id", Column::int((0..cfg.movies as i64).collect())),
            ("year", Column::int(years.clone())),
        ]),
    ));
    // person_info / movie_info facts: multiple rows per key (the M side).
    let pi_keys: Vec<i64> = (0..cfg.person_info_rows)
        .map(|_| r.random_range(0..cfg.persons as i64))
        .collect();
    let pi_age: Vec<i64> = (0..cfg.person_info_rows)
        .map(|_| r.random_range(18..80))
        .collect();
    tables.push((
        "person_info".to_string(),
        Table::from_columns(vec![
            ("person_id", Column::int(pi_keys)),
            ("age", Column::int(pi_age)),
        ]),
    ));
    let mi_keys: Vec<i64> = (0..cfg.movie_info_rows)
        .map(|_| r.random_range(0..cfg.movies as i64))
        .collect();
    let mi_budget: Vec<i64> = (0..cfg.movie_info_rows)
        .map(|_| imputed_feature(&mut r, 1000))
        .collect();
    tables.push((
        "movie_info".to_string(),
        Table::from_columns(vec![
            ("movie_id", Column::int(mi_keys)),
            ("budget", Column::int(mi_budget)),
        ]),
    ));
    // cast_info fact with the target.
    let mut p = Vec::with_capacity(cfg.cast_rows);
    let mut m = Vec::with_capacity(cfg.cast_rows);
    let mut role = Vec::with_capacity(cfg.cast_rows);
    let mut rating = Vec::with_capacity(cfg.cast_rows);
    for _ in 0..cfg.cast_rows {
        let pi = r.random_range(0..cfg.persons);
        let mi = r.random_range(0..cfg.movies);
        let ro = r.random_range(1..=10i64);
        p.push(pi as i64);
        m.push(mi as i64);
        role.push(ro);
        let y = 5.0 + 0.3 * ro as f64 + 0.01 * (years[mi] - 1980) as f64 - 0.5 * genders[pi] as f64
            + 0.2 * r.random::<f64>();
        rating.push(y);
    }
    tables.push((
        "cast_info".to_string(),
        Table::from_columns(vec![
            ("person_id", Column::int(p)),
            ("movie_id", Column::int(m)),
            ("role", Column::int(role)),
            ("rating", Column::float(rating)),
        ]),
    ));

    let mut graph = JoinGraph::new();
    graph.add_relation("cast_info", &["role"]).expect("fresh");
    graph.add_relation("person", &["gender"]).expect("fresh");
    graph.add_relation("movie", &["year"]).expect("fresh");
    graph.add_relation("person_info", &["age"]).expect("fresh");
    graph
        .add_relation("movie_info", &["budget"])
        .expect("fresh");
    // Fact → dim edges are N-to-1 by construction.
    graph
        .add_edge("cast_info", "person", &["person_id"])
        .expect("rels");
    graph
        .add_edge("cast_info", "movie", &["movie_id"])
        .expect("rels");
    graph
        .add_edge("person_info", "person", &["person_id"])
        .expect("rels");
    graph
        .add_edge("movie_info", "movie", &["movie_id"])
        .expect("rels");
    Generated {
        tables,
        graph,
        target_relation: "cast_info".to_string(),
        target_column: "rating".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_graph::cluster::clusters;

    #[test]
    fn galaxy_is_not_a_snowflake() {
        let g = imdb_galaxy(&ImdbConfig::default());
        assert_eq!(g.graph.snowflake_fact(), None);
        assert!(!g.graph.is_cyclic());
        assert!(g.graph.is_connected());
    }

    #[test]
    fn cpt_clusters_match_figure_3_shape() {
        let g = imdb_galaxy(&ImdbConfig::default());
        let cs = clusters(&g.graph);
        assert_eq!(cs.len(), 3);
        let cast = g.graph.rel_id("cast_info").unwrap();
        let c = cs.iter().find(|c| c.fact == cast).unwrap();
        assert_eq!(c.members.len(), 3, "cast_info + person + movie");
        // person is shared between the cast_info and person_info clusters.
        let person = g.graph.rel_id("person").unwrap();
        assert_eq!(cs.iter().filter(|c| c.contains(person)).count(), 2);
    }

    #[test]
    fn facts_have_expected_cardinalities() {
        let cfg = ImdbConfig {
            cast_rows: 123,
            ..Default::default()
        };
        let g = imdb_galaxy(&cfg);
        assert_eq!(g.table("cast_info").unwrap().num_rows(), 123);
        assert_eq!(g.table("person").unwrap().num_rows(), cfg.persons);
    }

    #[test]
    fn join_blowup_exists() {
        // The defining property of the galaxy: |R⋈| ≫ any base table.
        let cfg = ImdbConfig::default();
        let g = imdb_galaxy(&cfg);
        // Average person_info rows per person × average movie_info rows
        // per movie multiply each cast row.
        let blowup = (cfg.person_info_rows as f64 / cfg.persons as f64)
            * (cfg.movie_info_rows as f64 / cfg.movies as f64);
        assert!(blowup * cfg.cast_rows as f64 > 2.0 * cfg.cast_rows as f64);
        let _ = g;
    }
}
