//! Favorita-like star schema (paper Section 6, Figure 7).

use joinboost_engine::{Column, Database, Table};
use joinboost_graph::JoinGraph;
use rand::Rng;

use crate::{imputed_feature, rng};

/// A generated database: tables, join graph and target binding.
pub struct Generated {
    pub tables: Vec<(String, Table)>,
    pub graph: JoinGraph,
    pub target_relation: String,
    pub target_column: String,
}

impl Generated {
    /// Load every table into a database.
    pub fn load_into(&self, db: &Database) -> joinboost_engine::Result<()> {
        for (name, t) in &self.tables {
            db.create_table(name, t.clone())?;
        }
        Ok(())
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, t)| t)
    }
}

/// Configuration for the Favorita-like generator.
#[derive(Debug, Clone)]
pub struct FavoritaConfig {
    /// Rows in the `sales` fact table (paper: 80 M; default scaled down).
    pub fact_rows: usize,
    /// Rows per dimension table (paper dims are <2 MB each).
    pub dim_rows: usize,
    /// Additional imputed features per dimension beyond the predictive one
    /// (to sweep feature counts, Figure 10).
    pub extra_features_per_dim: usize,
    /// Uniform noise amplitude added to the target.
    pub noise: f64,
    pub seed: u64,
}

impl Default for FavoritaConfig {
    fn default() -> Self {
        FavoritaConfig {
            fact_rows: 10_000,
            dim_rows: 100,
            extra_features_per_dim: 0,
            noise: 1.0,
            seed: 42,
        }
    }
}

/// Dimension names of the Favorita schema.
pub const DIMS: [&str; 5] = ["items", "stores", "trans", "oil", "dates"];

/// Generate a Favorita-like star with imputed features and the target of
/// footnote 7:
/// `y = f_items·log(f_items) + log(f_oil) − 10·f_dates − 10·f_stores + f_trans²`.
pub fn favorita(cfg: &FavoritaConfig) -> Generated {
    let mut r = rng(cfg.seed);
    let dn = cfg.dim_rows.max(1);
    // Dimension tables: key + predictive feature + extras.
    let mut dim_features: Vec<Vec<i64>> = Vec::with_capacity(DIMS.len());
    let mut tables: Vec<(String, Table)> = Vec::new();
    for dim in DIMS {
        let keys: Vec<i64> = (0..dn as i64).collect();
        let f: Vec<i64> = (0..dn).map(|_| imputed_feature(&mut r, 1000)).collect();
        let mut t = Table::from_columns(vec![
            (&format!("{dim}_id"), Column::int(keys)),
            (&format!("f_{dim}"), Column::int(f.clone())),
        ]);
        for j in 0..cfg.extra_features_per_dim {
            let fx: Vec<i64> = (0..dn).map(|_| imputed_feature(&mut r, 1000)).collect();
            t.push_column(
                joinboost_engine::table::ColumnMeta::new(format!("f_{dim}_x{j}")),
                Column::int(fx),
            );
        }
        dim_features.push(f);
        tables.push((dim.to_string(), t));
    }
    // Fact table.
    let n = cfg.fact_rows;
    let mut fks: Vec<Vec<i64>> = vec![Vec::with_capacity(n); DIMS.len()];
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut fvals = [0f64; 5];
        for (d, fk) in fks.iter_mut().enumerate() {
            let k = r.random_range(0..dn);
            fk.push(k as i64);
            fvals[d] = dim_features[d][k] as f64;
        }
        let (f_items, f_stores, f_trans, f_oil, f_dates) =
            (fvals[0], fvals[1], fvals[2], fvals[3], fvals[4]);
        // Footnote 7 target (scaled so terms are comparable) + noise.
        let target = f_items * f_items.ln() + f_oil.ln() - 10.0 * f_dates - 10.0 * f_stores
            + (f_trans / 100.0) * (f_trans / 100.0);
        y.push(target + cfg.noise * (r.random::<f64>() - 0.5));
    }
    let mut fact = Table::new();
    for (d, dim) in DIMS.iter().enumerate() {
        fact.push_column(
            joinboost_engine::table::ColumnMeta::new(format!("{dim}_id")),
            Column::int(std::mem::take(&mut fks[d])),
        );
    }
    fact.push_column(
        joinboost_engine::table::ColumnMeta::new("net_profit"),
        Column::float(y),
    );
    tables.push(("sales".to_string(), fact));

    // Join graph.
    let mut graph = JoinGraph::new();
    graph.add_relation("sales", &[]).expect("fresh graph");
    for (d, dim) in DIMS.iter().enumerate() {
        let mut feats: Vec<String> = vec![format!("f_{dim}")];
        for j in 0..cfg.extra_features_per_dim {
            feats.push(format!("f_{dim}_x{j}"));
        }
        let feat_refs: Vec<&str> = feats.iter().map(String::as_str).collect();
        graph.add_relation(dim, &feat_refs).expect("fresh graph");
        graph
            .add_edge("sales", dim, &[&format!("{dim}_id")])
            .expect("relations exist");
        let _ = d;
    }
    Generated {
        tables,
        graph,
        target_relation: "sales".to_string(),
        target_column: "net_profit".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_star() {
        let g = favorita(&FavoritaConfig {
            fact_rows: 500,
            dim_rows: 20,
            ..Default::default()
        });
        assert_eq!(g.tables.len(), 6);
        let sales = g.table("sales").unwrap();
        assert_eq!(sales.num_rows(), 500);
        // All FKs resolve.
        for dim in DIMS {
            let fk = sales.column(None, &format!("{dim}_id")).unwrap();
            for i in 0..fk.len() {
                let v = fk.get(i).as_i64().unwrap();
                assert!((0..20).contains(&v));
            }
        }
        assert_eq!(g.graph.snowflake_fact(), Some(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = favorita(&FavoritaConfig::default());
        let b = favorita(&FavoritaConfig::default());
        assert_eq!(a.table("sales"), b.table("sales"));
        let c = favorita(&FavoritaConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a.table("sales"), c.table("sales"));
    }

    #[test]
    fn extra_features_change_schema_and_graph() {
        let g = favorita(&FavoritaConfig {
            fact_rows: 10,
            dim_rows: 5,
            extra_features_per_dim: 3,
            ..Default::default()
        });
        assert_eq!(g.graph.all_features().len(), 5 * 4);
        let items = g.table("items").unwrap();
        assert_eq!(items.num_columns(), 2 + 3);
    }

    #[test]
    fn target_is_predictable_from_features() {
        // With zero noise, equal feature vectors give equal targets.
        let g = favorita(&FavoritaConfig {
            fact_rows: 2_000,
            dim_rows: 3,
            noise: 0.0,
            ..Default::default()
        });
        let sales = g.table("sales").unwrap();
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<i64>, f64> = HashMap::new();
        for i in 0..sales.num_rows() {
            let key: Vec<i64> = (0..5)
                .map(|c| sales.columns[c].get(i).as_i64().unwrap())
                .collect();
            let y = sales.columns[5].f64_at(i).unwrap();
            if let Some(prev) = seen.insert(key, y) {
                assert!((prev - y).abs() < 1e-9);
            }
        }
    }
}
