//! Deterministic synthetic tables shared by the criterion benches and the
//! experiments CLI, so both measure exactly the same workload.

use joinboost_engine::{Column, Table};

/// Xorshift64 PRNG step (no external deps; deterministic across runs).
pub fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Fact table `(k INT, ks STR, y FLOAT)`: `rows` rows over `groups`
/// distinct keys (`ks` mirrors `k` as a dictionary-coded string).
pub fn grouped_fact_table(rows: usize, groups: u64) -> Table {
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut k = Vec::with_capacity(rows);
    let mut ks = Vec::with_capacity(rows);
    let mut y = Vec::with_capacity(rows);
    for _ in 0..rows {
        let g = xorshift(&mut seed) % groups;
        k.push(g as i64);
        ks.push(format!("cat{g}"));
        y.push((xorshift(&mut seed) % 1000) as f64 / 10.0 - 50.0);
    }
    Table::from_columns(vec![
        ("k", Column::int(k)),
        ("ks", Column::str(ks)),
        ("y", Column::float(y)),
    ])
}
