//! One experiment per table/figure of the paper's evaluation.
//!
//! Datasets are scaled-down synthetics (DESIGN.md documents the
//! substitutions); absolute times differ from the paper's testbed, but
//! each experiment is expected to reproduce the *shape* of its figure —
//! who wins, roughly by what factor, and where crossovers fall.

#![allow(clippy::field_reassign_with_default)]

use std::time::{Duration, Instant};

use joinboost::backend::{EngineBackend, ShardedBackend, SqlBackend, SqlTextBackend};
use joinboost::predict::{materialize_features, targets};
use joinboost::{
    train_decision_tree, train_gbm, train_gbm_cb, train_gbm_resume, train_random_forest, Dataset,
    TrainParams, UpdateMethod,
};
use joinboost_baselines::lightgbm::{self, LgbmParams};
use joinboost_baselines::{batch, madlib, naive};
use joinboost_datagen::{
    favorita, fig5_fact_table, imdb_galaxy, tpcds, tpch, FavoritaConfig, Fig5Config, ImdbConfig,
    TpcConfig,
};
use joinboost_engine::{Column, Database, EngineConfig};
use joinboost_semiring::loss::rmse;

use crate::report::{write_bench_json, JsonValue, Report};
use crate::{dist, secs, time};

/// Run one experiment by name; `all` runs everything.
pub fn run(name: &str) -> Result<(), String> {
    match name {
        "fig5" => fig5(),
        "fig8a" => fig8a(),
        "fig8b" => fig8bc(),
        "fig8c" => fig8bc(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16a" => fig16a(),
        "fig16b" => fig16b(),
        "fig17" => fig17(),
        "fig18" => fig18(),
        "fig20" => fig20(),
        "losses" => losses(),
        "agg" => agg(),
        "backends" => backends_experiment(),
        "shards" => shard_scale(),
        "remote" => remote_scale(false),
        "remote-flaky" => remote_scale(true),
        "serve" => serve_bench(),
        "paged" => paged_bench(),
        "recovery" => recovery_bench(),
        "all" => {
            for n in [
                "fig5", "fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                "fig15", "fig16a", "fig16b", "fig17", "fig18", "fig20", "losses", "agg",
                "backends",
            ] {
                run(n)?;
            }
            Ok(())
        }
        other => Err(format!(
            "unknown experiment {other}; see `experiments help` for the list"
        )),
    }
}

pub const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "fig5",
        "residual update time per method x backend (pilot study)",
    ),
    (
        "fig8a",
        "random forest training time vs LightGBM-like baseline",
    ),
    ("fig8b", "gradient boosting training time + rmse curves"),
    ("fig9", "1st-iteration query counts and latency histogram"),
    (
        "fig10",
        "gradient boosting vs number of features (baseline OOM)",
    ),
    (
        "fig11",
        "gradient boosting vs TPC-DS scale factor (baseline OOM)",
    ),
    ("fig12", "multi-machine scaling, TPC-DS SF sweep"),
    ("fig13", "cloud-warehouse style decision tree, 1-6 machines"),
    ("fig14", "galaxy-schema gradient boosting on IMDB-like data"),
    ("fig15", "train/update time per DBMS backend"),
    (
        "fig16a",
        "decision tree: Naive vs Batch(LMFAO-like) vs JoinBoost",
    ),
    ("fig16b", "decision tree vs MADLib-like row engine"),
    (
        "fig17",
        "TPC-DS / TPC-H gradient boosting and random forest",
    ),
    ("fig18", "intra/inter-query parallelism sweeps"),
    ("fig20", "histogram bins and the cuboid optimization"),
    (
        "losses",
        "objective sweep (Table 3 gradients/hessians in action)",
    ),
    (
        "agg",
        "engine hot path: serial vs parallel fused grouped aggregation",
    ),
    (
        "backends",
        "one GBM run through every SqlBackend impl (engine/text/sharded), models asserted bit-identical",
    ),
    (
        "shards",
        "sharded split pushdown off/on: shuffle volume + wall-clock, 1-4 fact partitions (build with --features sharded)",
    ),
    (
        "remote",
        "multi-process sharding over sockets: wire bytes + rows shipped, pushdown off/on (build with --features sharded)",
    ),
    (
        "remote-flaky",
        "the remote sweep under fault injection: every 9th request drops its connection, the retrying clients recover, models still bit-identical (build with --features sharded)",
    ),
    (
        "serve",
        "serving tier end-to-end against spawned shard_server processes: job API demo + latency sweep, clients x batch size (needs the shard_server binary built alongside)",
    ),
    (
        "paged",
        "out-of-core engine: GBM wall-clock + buffer-pool hit rate across pool sizes (8..1024 pages), models asserted bit-identical to the in-memory engine",
    ),
    (
        "recovery",
        "crash recovery: reopen time + WAL size vs workload length with and without checkpoints, and restart-resume vs cold-retrain wall-clock (models asserted bit-identical)",
    ),
];

// ---------------------------------------------------------------------------

fn favorita_scaled(
    fact_rows: usize,
    dim_rows: usize,
    extra: usize,
) -> joinboost_datagen::favorita::Generated {
    favorita(&FavoritaConfig {
        fact_rows,
        dim_rows,
        extra_features_per_dim: extra,
        noise: 100.0,
        seed: 42,
    })
}

fn load(gen: &joinboost_datagen::favorita::Generated, config: EngineConfig) -> Database {
    let db = Database::new(config);
    gen.load_into(&db).expect("load");
    db
}

/// Figure 5: residual update time per method on each DBMS backend.
fn fig5() -> Result<(), String> {
    let leaves = 8usize;
    let base_cfg = Fig5Config {
        rows: 150_000,
        ..Default::default()
    };
    let preds = joinboost_datagen::fig5::fig5_leaf_predictions(&base_cfg);
    let backends: Vec<(&str, EngineConfig, bool)> = vec![
        ("X-col", EngineConfig::dbms_x_col(), false),
        ("X-row", EngineConfig::dbms_x_row(), false),
        ("D-dis", EngineConfig::duckdb_disk(), false),
        ("D-mem", EngineConfig::duckdb_mem(), false),
        ("DP", EngineConfig::duckdb_mem(), true),
        ("D-Swap", EngineConfig::d_swap(), false),
    ];
    let methods = [
        "Naive",
        "UPDATE",
        "CREATE-0",
        "CREATE-5",
        "CREATE-10",
        "ColSwap",
    ];
    let mut report = Report::new(
        "Figure 5: residual update time (s) by method and backend",
        &[
            "backend",
            "Naive",
            "UPDATE",
            "CREATE-0",
            "CREATE-5",
            "CREATE-10",
            "ColSwap",
        ],
    );
    for (bname, config, external) in &backends {
        let mut cells = vec![bname.to_string()];
        for method in methods {
            let k = match method {
                "CREATE-5" => 5,
                "CREATE-10" => 10,
                _ => 0,
            };
            let cfg = Fig5Config {
                extra_columns: k,
                ..base_cfg.clone()
            };
            let mut fact = fig5_fact_table(&cfg);
            if method == "Naive" {
                fact.push_column(
                    joinboost_engine::table::ColumnMeta::new("jb_rid"),
                    Column::int((0..fact.num_rows() as i64).collect()),
                );
            }
            let db = Database::new(config.clone());
            if *external {
                db.register_external("f", &fact);
            } else {
                db.create_table("f", fact).expect("load fact");
            }
            for (i, m) in joinboost_datagen::fig5::fig5_messages(&cfg)
                .into_iter()
                .enumerate()
            {
                db.create_table(&format!("m{i}"), m).expect("load message");
            }
            let case_expr = {
                let mut whens = String::new();
                for (i, p) in preds.iter().enumerate().take(leaves) {
                    whens.push_str(&format!(" WHEN d IN (SELECT d FROM m{i}) THEN s - {p:.6}"));
                }
                format!("CASE{whens} ELSE s END")
            };
            let other_cols: String = (1..=k).map(|i| format!(", c{i}")).collect();
            let result: Option<Duration> = match method {
                "Naive" => {
                    let (r, d) = time(|| {
                        db.execute(&format!(
                            "CREATE TABLE u AS SELECT jb_rid, {case_expr} AS jb_delta FROM f"
                        ))?;
                        db.execute(&format!(
                            "CREATE OR REPLACE TABLE f AS SELECT jb_delta AS s, d{other_cols}, jb_rid FROM f JOIN u USING (jb_rid)"
                        ))?;
                        db.execute("DROP TABLE u")
                    });
                    r.ok().map(|_| d)
                }
                "UPDATE" => {
                    let (r, d) = time(|| {
                        for (i, p) in preds.iter().enumerate().take(leaves) {
                            db.execute(&format!(
                                "UPDATE f SET s = s - {p:.6} WHERE d IN (SELECT d FROM m{i})"
                            ))?;
                        }
                        Ok::<(), joinboost_engine::EngineError>(())
                    });
                    r.ok().map(|_| d)
                }
                "CREATE-0" | "CREATE-5" | "CREATE-10" => {
                    let (r, d) = time(|| {
                        db.execute(&format!(
                            "CREATE OR REPLACE TABLE f AS SELECT {case_expr} AS s, d{other_cols} FROM f"
                        ))
                    });
                    r.ok().map(|_| d)
                }
                "ColSwap" => {
                    if *external {
                        let (r, d) = time(|| {
                            let t = db.execute(&format!("SELECT {case_expr} AS s FROM f"))?;
                            db.external("f")?.replace_column("s", t.columns[0].clone())
                        });
                        r.ok().map(|_| d)
                    } else if config.allow_swap {
                        let (r, d) = time(|| {
                            db.execute(&format!(
                                "CREATE TABLE delta AS SELECT {case_expr} AS s FROM f"
                            ))?;
                            db.execute("SWAP COLUMN f.s WITH delta.s")?;
                            db.execute("DROP TABLE delta")
                        });
                        r.ok().map(|_| d)
                    } else {
                        None
                    }
                }
                _ => unreachable!(),
            };
            cells.push(result.map_or("n/a".to_string(), secs));
        }
        report.row(&cells);
    }
    // LightGBM reference: a threaded write over a plain array.
    let cfg = base_cfg.clone();
    let fact = fig5_fact_table(&cfg);
    let mut s = fact
        .column(None, "s")
        .expect("s")
        .to_f64_vec()
        .expect("f64");
    let d = fact
        .column(None, "d")
        .expect("d")
        .to_f64_vec()
        .expect("f64");
    let range = (cfg.key_domain / leaves as i64) as f64;
    let (_, lgbm_t) = time(|| {
        let chunk = s.len().div_ceil(4);
        crossbeam::thread::scope(|scope| {
            for (ci, sl) in s.chunks_mut(chunk).enumerate() {
                let d = &d;
                let preds = &preds;
                scope.spawn(move |_| {
                    let base = ci * chunk;
                    for (i, v) in sl.iter_mut().enumerate() {
                        let leaf = (((d[base + i] - 1.0) / range) as usize).min(leaves - 1);
                        *v -= preds[leaf];
                    }
                });
            }
        })
        .expect("scope");
    });
    report.note(format!(
        "LightGBM-style parallel array update: {} s (the red line)",
        secs(lgbm_t)
    ));
    report.note("expected shape: Naive >> UPDATE/CREATE >> ColSwap ~ DP ~ LightGBM");
    report.print();
    Ok(())
}

/// Figure 8a: random forest training time vs the LightGBM-like baseline.
fn fig8a() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 50, 0);
    let iters = [5usize, 10, 20, 40];
    let mut report = Report::new(
        "Figure 8a: random forest cumulative training time (s)",
        &["trees", "joinboost", "lightgbm-like", "lgbm+export"],
    );
    // Baseline export charged once.
    let db = load(&gen, EngineConfig::duckdb_mem());
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let (flat, export) = lightgbm::export_join(&set).map_err(|e| e.to_string())?;
    for &n in &iters {
        let mut params = TrainParams::paper_rf();
        params.num_iterations = n;
        params.threads = 4;
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let (_, jb_t) = time(|| train_random_forest(&set, &params).expect("rf"));
        let lp = LgbmParams {
            num_iterations: n,
            bagging_fraction: 0.1,
            feature_fraction: 0.8,
            ..Default::default()
        };
        let (_, lg_t) = time(|| lightgbm::train_rf(&flat, &lp).expect("lgbm rf"));
        report.row(&[
            n.to_string(),
            secs(jb_t),
            secs(lg_t),
            secs(lg_t + export.total()),
        ]);
    }
    report.note(format!(
        "baseline join+export+load cost: {} s (dotted line in the paper)",
        secs(export.total())
    ));
    report.note("expected shape: joinboost < lgbm+export (paper: ~3x faster at 80M rows, where join+export dominates)");
    report.note("deviation: at this scale our interpreted SQL engine cannot beat a flat-array Rust loop; the scaling/OOM figures (10-12) carry the headline instead");
    report.print();
    Ok(())
}

/// Figures 8b + 8c: gradient boosting time and rmse per iteration.
fn fig8bc() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 50, 0);
    let db = load(&gen, EngineConfig::d_swap());
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let eval = materialize_features(&set).map_err(|e| e.to_string())?;
    let ys = targets(&eval).map_err(|e| e.to_string())?;
    let checkpoints = [1usize, 5, 10, 20, 40];

    let mut params = TrainParams::paper_gbm();
    params.num_iterations = 40;
    params.update_method = UpdateMethod::ColumnSwap;
    let mut jb_scores = vec![0.0f64; ys.len()];
    let mut jb_rows: Vec<(usize, Duration, f64)> = Vec::new();
    let start = Instant::now();
    let model = train_gbm_cb(&set, &params, |iter, m| {
        let tree = m.trees.last().expect("just trained");
        for (i, sc) in jb_scores.iter_mut().enumerate() {
            *sc += m.learning_rate
                * tree.predict(&joinboost::predict::TableRow {
                    table: &eval,
                    index: i,
                });
        }
        if checkpoints.contains(&(iter + 1)) {
            let preds: Vec<f64> = jb_scores.iter().map(|s| s + m.init_score).collect();
            jb_rows.push((iter + 1, start.elapsed(), rmse(&ys, &preds)));
        }
        true
    })
    .map_err(|e| e.to_string())?;
    let _ = model;

    // Baseline.
    let set2 = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let (flat, export) = lightgbm::export_join(&set2).map_err(|e| e.to_string())?;
    let lp = LgbmParams {
        num_iterations: 40,
        ..Default::default()
    };
    let mut lg_rows: Vec<(usize, Duration, f64)> = Vec::new();
    let lg_start = Instant::now();
    lightgbm::train_gbdt_cb(&flat, &lp, |iter, m| {
        if checkpoints.contains(&(iter + 1)) {
            let preds = m.predict_table(&eval);
            lg_rows.push((
                iter + 1,
                lg_start.elapsed() + export.total(),
                rmse(&ys, &preds),
            ));
        }
    })
    .map_err(|e| e.to_string())?;

    let mut report = Report::new(
        "Figure 8b/8c: gradient boosting time (s) and training rmse",
        &[
            "iter",
            "jb_time",
            "jb_rmse",
            "lgbm_time(+export)",
            "lgbm_rmse",
        ],
    );
    for ((i, jt, jr), (_, lt, lr)) in jb_rows.iter().zip(&lg_rows) {
        report.row(&[
            i.to_string(),
            secs(*jt),
            format!("{jr:.2}"),
            secs(*lt),
            format!("{lr:.2}"),
        ]);
    }
    report.note("expected shape: near-identical rmse curves (same algorithm); paper gets 1.1x time at 80M rows where export dominates");
    report.note("deviation: our interpreted engine is slower per query than the flat-array baseline at laptop scale");
    report.print();
    Ok(())
}

/// Figure 9: query counts and latency histogram of the 1st GBM iteration.
fn fig9() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 50, 2); // 15 features over 5 edges
    let db = load(&gen, EngineConfig::duckdb_mem());
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let mut params = TrainParams::default();
    params.num_iterations = 1;
    let model = train_gbm(&set, &params).map_err(|e| e.to_string())?;
    let stats = &model.stats;
    let mut report = Report::new(
        "Figure 9a: query counts in the 1st iteration",
        &["kind", "count"],
    );
    report.row(&["feature-split".into(), stats.split_queries.to_string()]);
    report.row(&["message".into(), stats.message_queries.to_string()]);
    let nodes = 2 * params.num_leaves - 1;
    report.note(format!(
        "expected: split ~= nodes x features = {} x {} (paper: 270 = 15 x 18); messages bounded by nodes x edges = {} x {} (paper: 75 = 15 x 5, identity dims dropped)",
        nodes,
        set.features().len(),
        nodes,
        set.graph.num_edges(),
    ));
    report.print();

    let mut hist = Report::new(
        "Figure 9b: query execution time histogram (ms buckets)",
        &["bucket_ms", "split_queries", "message_queries"],
    );
    let bucket = |d: &Duration| -> usize {
        let ms = d.as_secs_f64() * 1000.0;
        (ms.ln_1p().floor() as usize).min(9)
    };
    let mut split_h = [0u64; 10];
    let mut msg_h = [0u64; 10];
    for d in &stats.split_durations {
        split_h[bucket(d)] += 1;
    }
    for d in &stats.message_durations {
        msg_h[bucket(d)] += 1;
    }
    for b in 0..10 {
        if split_h[b] == 0 && msg_h[b] == 0 {
            continue;
        }
        hist.row(&[
            format!("<= {:.0}", ((b + 1) as f64).exp() - 1.0),
            split_h[b].to_string(),
            msg_h[b].to_string(),
        ]);
    }
    hist.note("expected shape: split queries cheap; fact-table messages the slowest");
    hist.print();
    Ok(())
}

/// Figure 10: gradient boosting vs number of features.
fn fig10() -> Result<(), String> {
    let mut report = Report::new(
        "Figure 10: GBM training time (s) at 10 iterations vs #features",
        &["features", "joinboost", "lightgbm-like"],
    );
    for extra in [0usize, 4, 9] {
        let nfeat = 5 * (extra + 1);
        let gen = favorita_scaled(15_000, 50, extra);
        let db = load(&gen, EngineConfig::duckdb_mem());
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.num_iterations = 10;
        let (_, jb_t) = time(|| train_gbm(&set, &params).expect("gbm"));
        // Baseline memory limit sized so 50 features exceed it (paper:
        // LightGBM OOMs at 50 features / 125 GB, scaled down here).
        let limit = 15_000 * 30 * 10; // bytes ~= rows x 30 features x 10B
        let set2 = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let lgbm_cell = match lightgbm::export_join(&set2) {
            Ok((flat, export)) => {
                let lp = LgbmParams {
                    num_iterations: 10,
                    memory_limit_bytes: Some(limit),
                    ..Default::default()
                };
                match lightgbm::train_gbdt(&flat, &lp) {
                    Ok(m) => secs(m.train_time + export.total()),
                    Err(_) => "OOM".to_string(),
                }
            }
            Err(e) => format!("error: {e}"),
        };
        report.row(&[nfeat.to_string(), secs(jb_t), lgbm_cell]);
    }
    report.note("expected shape: joinboost scales linearly with lower slope; baseline OOMs at 50");
    report.print();
    Ok(())
}

/// Figure 11: gradient boosting vs TPC-DS scale factor.
fn fig11() -> Result<(), String> {
    let mut report = Report::new(
        "Figure 11: GBM time (s) at 10 iterations vs TPC-DS scale (paper SF 10-25)",
        &["sf(paper)", "joinboost", "lightgbm-like"],
    );
    for (paper_sf, sf) in [(10, 1.0f64), (15, 1.5), (20, 2.0), (25, 2.5)] {
        let gen = tpcds(&TpcConfig {
            scale_factor: sf,
            base_fact_rows: 8_000,
            seed: 7,
        });
        let db = Database::in_memory();
        gen.load_into(&db).map_err(|e| e.to_string())?;
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.num_iterations = 10;
        let (_, jb_t) = time(|| train_gbm(&set, &params).expect("gbm"));
        let set2 = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let limit = 76 * 18_000; // flat model needs ~76 B/row; SF 25 (20k rows) exceeds this
        let cell = match lightgbm::export_join(&set2) {
            Ok((flat, export)) => {
                let lp = LgbmParams {
                    num_iterations: 10,
                    memory_limit_bytes: Some(limit),
                    ..Default::default()
                };
                match lightgbm::train_gbdt(&flat, &lp) {
                    Ok(m) => secs(m.train_time + export.total()),
                    Err(_) => "OOM".to_string(),
                }
            }
            Err(e) => format!("error: {e}"),
        };
        report.row(&[paper_sf.to_string(), secs(jb_t), cell]);
    }
    report.note("expected shape: both linear, joinboost lower slope; baseline OOM at SF=25");
    report.print();
    Ok(())
}

/// Figure 12: multi-machine gradient-boosting-style workload.
fn fig12() -> Result<(), String> {
    let mut report = Report::new(
        "Figure 12a: distributed tree workload time (s) on 4 machines vs SF (paper 30-40)",
        &["sf(paper)", "joinboost(4m)", "single-table baseline"],
    );
    for (paper_sf, sf) in [(30, 3.0f64), (35, 3.5), (40, 4.0)] {
        let gen = tpcds(&TpcConfig {
            scale_factor: sf,
            base_fact_rows: 8_000,
            seed: 11,
        });
        let p = dist::deploy(&gen, 4);
        let (_, jb_t) = time(|| dist::train_partitioned_tree(&p, &gen, 3, 5.0));
        // Single-node baseline with a memory cap that SF40 exceeds.
        let db = Database::in_memory();
        gen.load_into(&db).map_err(|e| e.to_string())?;
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let limit = 76 * 30_000; // OOM at SF 40 (32k rows)
        let cell = match lightgbm::export_join(&set) {
            Ok((flat, export)) => {
                let lp = LgbmParams {
                    num_iterations: 10,
                    memory_limit_bytes: Some(limit),
                    ..Default::default()
                };
                match lightgbm::train_gbdt(&flat, &lp) {
                    Ok(m) => secs(m.train_time + export.total()),
                    Err(_) => "OOM".to_string(),
                }
            }
            Err(e) => format!("error: {e}"),
        };
        report.row(&[paper_sf.to_string(), secs(jb_t), cell]);
    }
    report
        .note("expected shape: joinboost scales; baseline OOMs at the top SF (paper: >9x faster)");
    report.print();

    let mut r2 = Report::new(
        "Figure 12b: time (s) vs machines at the top SF",
        &["machines", "joinboost"],
    );
    let gen = tpcds(&TpcConfig {
        scale_factor: 4.0,
        base_fact_rows: 8_000,
        seed: 11,
    });
    for m in [1usize, 2, 3, 4] {
        let p = dist::deploy(&gen, m);
        let (_, t) = time(|| dist::train_partitioned_tree(&p, &gen, 3, 5.0));
        r2.row(&[m.to_string(), secs(t)]);
    }
    r2.note("expected shape: trains even on 1 machine; speeds up with more machines");
    r2.print();
    Ok(())
}

/// Figure 13: cloud-warehouse style decision tree, 1-6 machines.
fn fig13() -> Result<(), String> {
    let gen = tpcds(&TpcConfig {
        scale_factor: 8.0,
        base_fact_rows: 8_000,
        seed: 13,
    });
    let mut report = Report::new(
        "Figure 13: depth-3 decision tree time (s) vs machines (paper: TPC-DS SF=1000)",
        &["machines", "time", "shuffle_bytes"],
    );
    for m in [1usize, 2, 4, 6] {
        let p = dist::deploy(&gen, m);
        let (_, t) = time(|| dist::train_partitioned_tree(&p, &gen, 3, 5.0));
        report.row(&[
            m.to_string(),
            secs(t),
            p.shuffle_bytes
                .load(std::sync::atomic::Ordering::Relaxed)
                .to_string(),
        ]);
    }
    report.note("expected shape: 2 machines introduce a shuffle stage; 4-6 recover modest gains");
    report.print();
    Ok(())
}

/// Figure 14: galaxy-schema gradient boosting (IMDB-like, CPT).
fn fig14() -> Result<(), String> {
    let gen = imdb_galaxy(&ImdbConfig {
        persons: 150,
        movies: 120,
        cast_rows: 10_000,
        person_info_rows: 1_500,
        movie_info_rows: 1_200,
        seed: 42,
    });
    let db = Database::in_memory();
    gen.load_into(&db).map_err(|e| e.to_string())?;
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let mut params = TrainParams::default();
    params.num_iterations = 10;
    params.num_leaves = 8;
    let mut rows: Vec<(usize, Duration)> = Vec::new();
    let start = Instant::now();
    train_gbm_cb(&set, &params, |iter, _| {
        rows.push((iter + 1, start.elapsed()));
        true
    })
    .map_err(|e| e.to_string())?;
    let mut report = Report::new(
        "Figure 14: galaxy GBM cumulative time (s) per iteration",
        &["iter", "time"],
    );
    for (i, t) in rows {
        report.row(&[i.to_string(), secs(t)]);
    }
    report.note("expected shape: linear in iterations (single-table libraries cannot run at all: |join| explodes)");
    report.print();
    Ok(())
}

/// Figure 15: train/update breakdown per backend.
fn fig15() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 50, 0);
    let backends: Vec<(&str, EngineConfig, UpdateMethod)> = vec![
        (
            "X-col",
            EngineConfig::dbms_x_col(),
            UpdateMethod::CreateTable,
        ),
        (
            "X-row",
            EngineConfig::dbms_x_row(),
            UpdateMethod::CreateTable,
        ),
        (
            "X-Swap*",
            EngineConfig {
                allow_swap: true,
                ..EngineConfig::dbms_x_col()
            },
            UpdateMethod::ColumnSwap,
        ),
        (
            "D-disk",
            EngineConfig::duckdb_disk(),
            UpdateMethod::CreateTable,
        ),
        (
            "D-mem",
            EngineConfig::duckdb_mem(),
            UpdateMethod::CreateTable,
        ),
        ("DP", EngineConfig::duckdb_mem(), UpdateMethod::Interop),
        ("D-Swap", EngineConfig::d_swap(), UpdateMethod::ColumnSwap),
    ];
    let mut report = Report::new(
        "Figure 15: one GBM iteration: train vs residual-update time (s)",
        &["backend", "train", "update", "total"],
    );
    for (name, config, method) in backends {
        let db = load(&gen, config);
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.num_iterations = 1;
        params.update_method = method;
        let model = train_gbm(&set, &params).map_err(|e| e.to_string())?;
        report.row(&[
            name.to_string(),
            secs(model.train_time),
            secs(model.update_time),
            secs(model.train_time + model.update_time),
        ]);
    }
    report.note("expected shape: columnar trains fast; swap/interop updates ~free; DP trains slower (interop scans)");
    report.print();
    Ok(())
}

/// Figure 16a: Naive vs Batch (LMFAO-like) vs JoinBoost decision tree.
fn fig16a() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 200, 0);
    let db = load(&gen, EngineConfig::duckdb_mem());
    let mut params = TrainParams::default();
    params.num_leaves = 64;
    params.max_depth = 10;
    let mut report = Report::new(
        "Figure 16a: decision tree training time (s)",
        &["system", "time", "message_queries"],
    );
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let ((_, _, mat), naive_t) = time(|| naive::train_naive_tree(&set, &params).expect("naive"));
    report.row(&[
        "Naive".into(),
        secs(naive_t),
        format!("(materialize {} s)", secs(mat)),
    ]);
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let ((_, bstats), batch_t) = time(|| batch::train_batch_tree(&set, &params).expect("batch"));
    report.row(&[
        "Batch (LMFAO-like)".into(),
        secs(batch_t),
        bstats.message_queries.to_string(),
    ]);
    let set = Dataset::new(
        &db,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let ((_, jstats), jb_t) = time(|| train_decision_tree(&set, &params).expect("jb"));
    report.row(&[
        "JoinBoost".into(),
        secs(jb_t),
        jstats.message_queries.to_string(),
    ]);
    report.note("expected shape: JoinBoost < Batch < Naive (paper: sharing ~3x over Batch; Batch ~2x over Naive; LMFAO sits between JoinBoost and Batch thanks to its compiled engine)");
    report.print();
    Ok(())
}

/// Figure 16b: JoinBoost vs the MADLib-like row-engine baseline.
fn fig16b() -> Result<(), String> {
    let gen = favorita_scaled(10_000, 30, 0);
    let mut params = TrainParams::default();
    params.num_leaves = 32;
    params.max_depth = 10;
    let db_col = load(&gen, EngineConfig::duckdb_mem());
    let set = Dataset::new(
        &db_col,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let (_, jb_t) = time(|| train_decision_tree(&set, &params).expect("jb"));
    let db_row = madlib::row_oriented_db(&gen.tables);
    let set = Dataset::new(
        &db_row,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let (_, mad_t) = time(|| madlib::train_madlib_tree(&set, &params).expect("madlib"));
    let mut report = Report::new(
        "Figure 16b: decision tree vs MADLib-like (10k rows)",
        &["system", "time", "speedup"],
    );
    report.row(&["JoinBoost".into(), secs(jb_t), "1.0x".into()]);
    report.row(&[
        "MADLib-like".into(),
        secs(mad_t),
        format!(
            "{:.1}x slower",
            mad_t.as_secs_f64() / jb_t.as_secs_f64().max(1e-9)
        ),
    ]);
    report.note("expected shape: JoinBoost >> MADLib-like (paper: ~16x)");
    report.print();
    Ok(())
}

/// Figure 17 (Appendix C.1): TPC-DS / TPC-H GBM and RF.
fn fig17() -> Result<(), String> {
    let mut report = Report::new(
        "Figure 17: GBM / RF time (s) at 10 iterations, TPC-DS vs TPC-H",
        &["dataset", "model", "joinboost", "lgbm+export"],
    );
    for (name, gen) in [
        (
            "tpcds",
            tpcds(&TpcConfig {
                scale_factor: 1.0,
                base_fact_rows: 15_000,
                seed: 5,
            }),
        ),
        (
            "tpch",
            tpch(&TpcConfig {
                scale_factor: 1.0,
                base_fact_rows: 15_000,
                seed: 5,
            }),
        ),
    ] {
        let db = Database::in_memory();
        gen.load_into(&db).map_err(|e| e.to_string())?;
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let (flat, export) = lightgbm::export_join(&set).map_err(|e| e.to_string())?;
        for model in ["gbm", "rf"] {
            let set = Dataset::new(
                &db,
                gen.graph.clone(),
                &gen.target_relation,
                &gen.target_column,
            )
            .map_err(|e| e.to_string())?;
            let (jb_t, lg_t) = if model == "gbm" {
                let mut params = TrainParams::default();
                params.num_iterations = 10;
                let (_, jt) = time(|| train_gbm(&set, &params).expect("gbm"));
                let lp = LgbmParams {
                    num_iterations: 10,
                    ..Default::default()
                };
                let (m, _) = time(|| lightgbm::train_gbdt(&flat, &lp).expect("lgbm"));
                (jt, m.train_time + export.total())
            } else {
                let mut params = TrainParams::paper_rf();
                params.num_iterations = 10;
                params.threads = 4;
                let (_, jt) = time(|| train_random_forest(&set, &params).expect("rf"));
                let lp = LgbmParams {
                    num_iterations: 10,
                    bagging_fraction: 0.1,
                    feature_fraction: 0.8,
                    ..Default::default()
                };
                let (m, _) = time(|| lightgbm::train_rf(&flat, &lp).expect("lgbm rf"));
                (jt, m.train_time + export.total())
            };
            report.row(&[name.to_string(), model.to_string(), secs(jb_t), secs(lg_t)]);
        }
    }
    report.note("expected shape: joinboost competitive; TPC-H relatively slower for joinboost (large dimension messages)");
    report.print();
    Ok(())
}

/// Figure 18: parallelism sweeps.
fn fig18() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 50, 1);
    let db = load(&gen, EngineConfig::duckdb_mem());
    let mut r1 = Report::new(
        "Figure 18a: one tree (8 leaves), split-query worker threads",
        &["threads", "time"],
    );
    for threads in [1usize, 2, 4, 8] {
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.threads = threads;
        let (_, t) = time(|| train_decision_tree(&set, &params).expect("dt"));
        r1.row(&[threads.to_string(), secs(t)]);
    }
    r1.note("deviation: at this scale parallel split queries contend on scan memory bandwidth; the tree-parallel effect shows in 18b/RF");
    r1.print();

    let mut r2 = Report::new(
        "Figure 18b: inter-query parallelism (w/o vs para)",
        &["model", "w/o", "para", "reduction"],
    );
    for model in ["GB", "RF"] {
        let mut times = Vec::new();
        for threads in [1usize, 4] {
            let set = Dataset::new(
                &db,
                gen.graph.clone(),
                &gen.target_relation,
                &gen.target_column,
            )
            .map_err(|e| e.to_string())?;
            let t = if model == "GB" {
                let mut params = TrainParams::default();
                params.num_iterations = 10;
                params.threads = threads;
                time(|| train_gbm(&set, &params).expect("gbm")).1
            } else {
                let mut params = TrainParams::paper_rf();
                params.num_iterations = 10;
                params.threads = threads;
                time(|| train_random_forest(&set, &params).expect("rf")).1
            };
            times.push(t);
        }
        let red = 100.0 * (1.0 - times[1].as_secs_f64() / times[0].as_secs_f64().max(1e-9));
        r2.row(&[
            model.to_string(),
            secs(times[0]),
            secs(times[1]),
            format!("{red:.0}%"),
        ]);
    }
    r2.note("expected shape: parallelism cuts GB ~28% and RF ~35% in the paper");
    r2.print();
    Ok(())
}

/// Figure 20: histogram bins and the cuboid optimization.
fn fig20() -> Result<(), String> {
    let gen = favorita_scaled(30_000, 60, 0);
    let db = load(&gen, EngineConfig::duckdb_mem());
    let eval = {
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        materialize_features(&set).map_err(|e| e.to_string())?
    };
    let ys = targets(&eval).map_err(|e| e.to_string())?;
    let mut report = Report::new(
        "Figure 20: histogram bins / cuboid: GBM 10 iterations",
        &["variant", "time", "rmse"],
    );
    for (label, bins, cuboid) in [
        ("exact (no bins)", 0usize, false),
        ("bins=10", 10, false),
        ("bins=5", 5, false),
        ("cuboid bins=10", 10, true),
        ("cuboid bins=5", 5, true),
    ] {
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.num_iterations = 10;
        params.max_bins = bins;
        params.use_cuboid = cuboid;
        let (model, t) = time(|| train_gbm(&set, &params).expect("gbm"));
        let r = rmse(&ys, &model.predict(&eval));
        report.row(&[label.to_string(), secs(t), format!("{r:.2}")]);
    }
    report.note("expected shape: fewer bins + cuboid much faster at modest rmse cost (paper: >100x at bins=5)");
    report.note("cuboid pays off once the cell count (bins^features) drops below the fact row count (bins=5: 3125 cells vs 30k rows)");
    report.print();
    Ok(())
}

/// Engine hot path: serial vs parallel fused grouped aggregation.
/// Parallelism is aggregate-sliced, so effective workers are capped by the
/// number of scan-needing aggregates: 2 for the variance-ring shape
/// (`COUNT(*)` comes from the grouping pass's group sizes), 5 for the
/// wide shape — the sweep reports both so the cap is visible.
fn agg() -> Result<(), String> {
    let table = crate::synth::grouped_fact_table(200_000, 100);
    let sum3 = "SELECT k, COUNT(*) AS c, SUM(y) AS s, SUM(y * y) AS q FROM t GROUP BY k";
    let wide = "SELECT k, COUNT(*) AS c, SUM(y) AS s, SUM(y * y) AS q, \
                AVG(y) AS m, MIN(y) AS lo, MAX(y) AS hi FROM t GROUP BY k";
    let mut report = Report::new(
        "Engine hot path: fused grouped aggregation, 200k rows (median ms)",
        &["agg_threads", "sum3(2 banks)", "wide(5 banks)"],
    );
    let median = |db: &Database, sql: &str| -> Result<f64, String> {
        for _ in 0..3 {
            db.query(sql).map_err(|e| e.to_string())?;
        }
        let mut samples: Vec<f64> = (0..15)
            .map(|_| time(|| db.query(sql).expect("agg query")).1.as_secs_f64() * 1e3)
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        Ok(samples[samples.len() / 2])
    };
    for threads in [1usize, 2, 4, 8] {
        let db = Database::new(EngineConfig {
            agg_threads: threads,
            ..EngineConfig::duckdb_mem()
        });
        db.create_table("t", table.clone())
            .map_err(|e| e.to_string())?;
        let m3 = median(&db, sum3)?;
        let mw = median(&db, wide)?;
        report.row(&[threads.to_string(), format!("{m3:.3}"), format!("{mw:.3}")]);
    }
    report.note(
        "aggregate-sliced parallelism is bit-identical to serial; workers cap at the bank \
         count, so sum3 stops improving past 2 threads and wide past 5",
    );
    report.print();
    Ok(())
}

/// `paged`: the out-of-core engine sweep. One GBM workload trained on
/// the in-memory engine (reference), then on paged engines whose buffer
/// pools shrink from comfortable (1024 pages = 4 MiB) down to absurd
/// (8 pages = 32 KiB, far below the working set). Models are asserted
/// bit-identical at every size — paging may cost wall-clock, never bits —
/// and the JSON captures the cost curve: hit rate, evictions, write-back
/// volume and train time per pool size.
fn paged_bench() -> Result<(), String> {
    use joinboost::backend::EngineBackend;
    use joinboost_engine::Replacement;

    const POOLS: &[usize] = &[1024, 256, 64, 8];
    let gen = favorita_scaled(6_000, 40, 1);
    let quantize = "UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0";
    let train = |backend: &EngineBackend| -> Result<(joinboost::GbmModel, Duration), String> {
        for (name, t) in &gen.tables {
            backend
                .create_table(name, t.clone())
                .map_err(|e| e.to_string())?;
        }
        backend.execute(quantize).map_err(|e| e.to_string())?;
        let set = Dataset::new(
            backend,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.num_iterations = 3;
        params.learning_rate = 0.5;
        params.leaf_quantization = (2.0f64).powi(-10);
        let (model, t) = time(|| train_gbm(&set, &params));
        Ok((model.map_err(|e| e.to_string())?, t))
    };

    let mem = EngineBackend::in_memory();
    let (reference, mem_time) = train(&mem)?;
    println!("in-memory reference: {}", secs(mem_time));

    let mut report = Report::new(
        "Out-of-core engine: GBM train vs buffer pool size (6k-row star, 3 iterations)",
        &[
            "pool",
            "train",
            "vs mem",
            "hit rate",
            "evictions",
            "written back",
            "page file",
        ],
    );
    report.row(&[
        "in-mem".into(),
        secs(mem_time),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    let mut json_rows: Vec<JsonValue> = Vec::new();
    for &pool_pages in POOLS {
        let dir = std::env::temp_dir().join(format!(
            "jb_bench_paged_{}_{pool_pages}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = EngineBackend::labeled(
            EngineConfig {
                bufferpool_pages: pool_pages,
                replacement: Replacement::Clock,
                agg_spill_bytes: 1 << 20,
                ..EngineConfig::paged(&dir)
            },
            format!("paged-{pool_pages}"),
        );
        let (model, t) = train(&backend)?;
        // The whole point: bits never depend on the pool size.
        if model.init_score.to_bits() != reference.init_score.to_bits()
            || model.trees != reference.trees
        {
            return Err(format!(
                "paged ({pool_pages} pages) model diverged from in-memory"
            ));
        }
        let stats = backend
            .database()
            .bufferpool_stats()
            .ok_or("paged engine must expose pool stats")?;
        let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
        let page_file_bytes = std::fs::metadata(dir.join("data.jbp"))
            .map(|m| m.len())
            .unwrap_or(0);
        report.row(&[
            format!("{pool_pages}p"),
            secs(t),
            format!("{:.2}x", t.as_secs_f64() / mem_time.as_secs_f64()),
            format!("{:.1}%", hit_rate * 100.0),
            stats.evictions.to_string(),
            format!("{:.1} MB", stats.spilled_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1} MB", page_file_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        json_rows.push(JsonValue::obj(vec![
            ("pool_pages", JsonValue::Int(pool_pages as i64)),
            ("train_s", JsonValue::Num(t.as_secs_f64())),
            ("hits", JsonValue::Int(stats.hits as i64)),
            ("misses", JsonValue::Int(stats.misses as i64)),
            ("hit_rate", JsonValue::Num(hit_rate)),
            ("evictions", JsonValue::Int(stats.evictions as i64)),
            ("spilled_bytes", JsonValue::Int(stats.spilled_bytes as i64)),
            ("page_file_bytes", JsonValue::Int(page_file_bytes as i64)),
        ]));
        drop(backend);
        let _ = std::fs::remove_dir_all(&dir);
    }
    report.note(
        "models bit-identical to the in-memory engine at every pool size; \
         8 pages = 32 KiB of cache against a multi-MB working set",
    );
    report.print();
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::Str("paged".into())),
        ("fact_rows", JsonValue::Int(6_000)),
        ("iterations", JsonValue::Int(3)),
        ("bit_identical", JsonValue::Int(1)),
        ("mem_train_s", JsonValue::Num(mem_time.as_secs_f64())),
        ("rows", JsonValue::Arr(json_rows)),
    ]);
    let path = write_bench_json("paged", &json).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Crash recovery economics, both halves of the durability story:
///
/// 1. **reopen time vs log length** — the same UPDATE workload on a
///    paged engine with checkpointing off (recovery replays the whole
///    log) and on (recovery loads the snapshot plus a bounded suffix);
/// 2. **restart-resume vs cold retrain** — finishing an interrupted
///    12-iteration GBM from its 6-tree checkpoint versus training all
///    12 iterations from scratch, models asserted bit-identical.
fn recovery_bench() -> Result<(), String> {
    const CKPT_BUDGET: u64 = 64 * 1024;
    let seed_rows = 4_000i64;
    let workload = |n: usize| -> Vec<String> {
        (0..n)
            .map(|i| format!("UPDATE t SET v = v + {}.0 WHERE k > {}", i % 7, i % 1000))
            .collect()
    };
    // Run `n` statements under `budget`, crash, and time the reopen.
    let run = |n: usize, budget: Option<u64>| -> Result<(Duration, u64, u64), String> {
        let dir = std::env::temp_dir().join(format!(
            "jb_bench_recovery_{}_{n}_{}",
            std::process::id(),
            budget.is_some()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            checkpoint_bytes: budget,
            ..EngineConfig::paged(&dir)
        };
        let checkpoints;
        {
            let db = Database::new(config.clone());
            db.create_table(
                "seed",
                joinboost_engine::Table::from_columns(vec![
                    ("k", Column::int((0..seed_rows).collect())),
                    (
                        "v",
                        Column::float((0..seed_rows).map(|i| i as f64 * 0.125).collect()),
                    ),
                ]),
            )
            .map_err(|e| e.to_string())?;
            db.execute("CREATE TABLE t AS SELECT * FROM seed")
                .map_err(|e| e.to_string())?;
            for s in workload(n) {
                db.execute(&s).map_err(|e| e.to_string())?;
            }
            checkpoints = db.stats().checkpoints;
            db.simulate_crash().map_err(|e| e.to_string())?;
        }
        let wal_bytes = std::fs::metadata(dir.join("wal.log"))
            .map(|m| m.len())
            .unwrap_or(0);
        let (db, open) = time(|| Database::new(config));
        let rows = db.row_count("t").map_err(|e| e.to_string())?;
        if rows != seed_rows as usize {
            return Err(format!("recovered t has {rows} rows, want {seed_rows}"));
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
        Ok((open, wal_bytes, checkpoints))
    };

    let mut report = Report::new(
        "Recovery: reopen time vs workload length, checkpoints off/on (64 KiB budget)",
        &[
            "statements",
            "wal (off)",
            "open (off)",
            "wal (on)",
            "open (on)",
            "ckpts",
        ],
    );
    let mut open_rows: Vec<JsonValue> = Vec::new();
    for &n in &[50usize, 200, 800] {
        let (open_off, wal_off, _) = run(n, None)?;
        let (open_on, wal_on, ckpts) = run(n, Some(CKPT_BUDGET))?;
        report.row(&[
            n.to_string(),
            format!("{:.1} KB", wal_off as f64 / 1024.0),
            secs(open_off),
            format!("{:.1} KB", wal_on as f64 / 1024.0),
            secs(open_on),
            ckpts.to_string(),
        ]);
        open_rows.push(JsonValue::obj(vec![
            ("statements", JsonValue::Int(n as i64)),
            ("wal_bytes_off", JsonValue::Int(wal_off as i64)),
            ("open_s_off", JsonValue::Num(open_off.as_secs_f64())),
            ("wal_bytes_on", JsonValue::Int(wal_on as i64)),
            ("open_s_on", JsonValue::Num(open_on.as_secs_f64())),
            ("checkpoints", JsonValue::Int(ckpts as i64)),
        ]));
    }
    report.note(
        "off: recovery replays every statement since birth; on: snapshot + \
         a suffix bounded by the checkpoint budget",
    );
    report.print();

    // Half 2: resume an interrupted job vs retrain from scratch.
    let gen = favorita_scaled(6_000, 40, 1);
    let backend = EngineBackend::in_memory();
    for (name, t) in &gen.tables {
        backend
            .create_table(name, t.clone())
            .map_err(|e| e.to_string())?;
    }
    backend
        .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
        .map_err(|e| e.to_string())?;
    let set = Dataset::new(
        &backend,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let mut params = TrainParams::default();
    params.num_iterations = 12;
    params.learning_rate = 0.5;
    params.leaf_quantization = (2.0f64).powi(-10);
    let (cold, cold_time) = time(|| train_gbm(&set, &params));
    let cold = cold.map_err(|e| e.to_string())?;
    // The "crash": a persisted checkpoint holding the first 6 trees.
    let prior: Vec<joinboost::Tree> = cold.trees[..6].to_vec();
    let (resumed, resume_time) = time(|| train_gbm_resume(&set, &params, &prior, |_, _| true));
    let resumed = resumed.map_err(|e| e.to_string())?;
    if resumed.init_score.to_bits() != cold.init_score.to_bits() || resumed.trees != cold.trees {
        return Err("resumed model diverged from the cold retrain".into());
    }
    let mut report = Report::new(
        "Recovery: finish a 12-iteration GBM from a 6-tree checkpoint vs cold retrain",
        &["strategy", "wall-clock", "vs cold"],
    );
    report.row(&["cold retrain".into(), secs(cold_time), "1.00x".into()]);
    report.row(&[
        "resume @6/12".into(),
        secs(resume_time),
        format!(
            "{:.2}x",
            resume_time.as_secs_f64() / cold_time.as_secs_f64()
        ),
    ]);
    report.note("resume replays stored trees' residual updates (no split search), then trains only the missing iterations; final models bit-identical");
    report.print();

    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::Str("recovery".into())),
        (
            "checkpoint_budget_bytes",
            JsonValue::Int(CKPT_BUDGET as i64),
        ),
        ("open_rows", JsonValue::Arr(open_rows)),
        ("cold_train_s", JsonValue::Num(cold_time.as_secs_f64())),
        ("resume_train_s", JsonValue::Num(resume_time.as_secs_f64())),
        ("resume_from", JsonValue::Int(6)),
        ("iterations", JsonValue::Int(12)),
        ("bit_identical", JsonValue::Int(1)),
    ]);
    let path = write_bench_json("recovery", &json).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Objective sweep: every Table-3 loss trains and reduces its loss.
fn losses() -> Result<(), String> {
    use joinboost_semiring::Objective;
    let gen = favorita_scaled(5_000, 30, 0);
    let db = load(&gen, EngineConfig::duckdb_mem());
    let mut report = Report::new(
        "Table 3 objectives: loss before/after 15 boosting iterations",
        &["objective", "init_loss", "final_loss"],
    );
    for obj in [
        Objective::SquaredError,
        Objective::AbsoluteError,
        Objective::Huber { delta: 50.0 },
        Objective::Fair { c: 10.0 },
        Objective::Quantile { alpha: 0.9 },
        Objective::Mape,
    ] {
        let set = Dataset::new(
            &db,
            gen.graph.clone(),
            &gen.target_relation,
            &gen.target_column,
        )
        .map_err(|e| e.to_string())?;
        let mut params = TrainParams::default();
        params.objective = obj;
        params.num_iterations = 15;
        params.learning_rate = 0.5;
        let model = train_gbm(&set, &params).map_err(|e| e.to_string())?;
        let eval = materialize_features(&set).map_err(|e| e.to_string())?;
        let ys = targets(&eval).map_err(|e| e.to_string())?;
        let ps = model.predict_raw(&eval);
        let init: f64 = ys
            .iter()
            .map(|&y| obj.loss(y, model.init_score))
            .sum::<f64>()
            / ys.len() as f64;
        let fin: f64 = ys
            .iter()
            .zip(&ps)
            .map(|(&y, &p)| obj.loss(y, p))
            .sum::<f64>()
            / ys.len() as f64;
        report.row(&[
            obj.name().to_string(),
            format!("{init:.2}"),
            format!("{fin:.2}"),
        ]);
    }
    report.print();
    Ok(())
}

// ---------------------------------------------------------------------------
// SqlBackend lineup (the trait-level successor of Figure 15)
// ---------------------------------------------------------------------------

/// Train one dyadic-recipe GBM on a backend (see `DESIGN.md` § Backends:
/// quantized targets + leaf quantization make models comparable bit for
/// bit across arbitrary data partitionings).
fn train_dyadic_gbm(
    backend: &dyn SqlBackend,
    gen: &joinboost_datagen::favorita::Generated,
    iterations: usize,
) -> Result<joinboost::GbmModel, String> {
    for (name, t) in &gen.tables {
        backend
            .create_table(name, t.clone())
            .map_err(|e| e.to_string())?;
    }
    backend
        .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
        .map_err(|e| e.to_string())?;
    let set = Dataset::new(
        backend,
        gen.graph.clone(),
        &gen.target_relation,
        &gen.target_column,
    )
    .map_err(|e| e.to_string())?;
    let mut params = TrainParams::default();
    params.num_iterations = iterations;
    params.learning_rate = 0.5;
    params.leaf_quantization = (2.0f64).powi(-10);
    train_gbm(&set, &params).map_err(|e| e.to_string())
}

/// Bit-level model comparison (plain `==` on f64 would accept
/// 0.0 == -0.0) — shared by the `backends` and `shards` experiments.
fn bit_identical(a: &joinboost::GbmModel, b: &joinboost::GbmModel) -> bool {
    a.init_score.to_bits() == b.init_score.to_bits()
        && a.trees.len() == b.trees.len()
        && a.trees.iter().zip(&b.trees).all(|(ta, tb)| {
            ta.nodes.len() == tb.nodes.len()
                && ta.nodes.iter().zip(&tb.nodes).all(|(na, nb)| {
                    na.split == nb.split
                        && na.value.to_bits() == nb.value.to_bits()
                        && na.weight.to_bits() == nb.weight.to_bits()
                })
        })
}

/// `backends`: the real multi-backend experiment — every [`SqlBackend`]
/// implementation trains the same GBM; models are asserted bit-identical.
fn backends_experiment() -> Result<(), String> {
    let gen = favorita_scaled(20_000, 50, 0);
    let mut report = Report::new(
        "Backends: 2 GBM iterations through every SqlBackend impl (bit-identical models)",
        &[
            "backend",
            "train",
            "update",
            "shards",
            "statements",
            "rows_shipped",
        ],
    );
    let mut reference: Option<joinboost::GbmModel> = None;
    let mut check = |model: &joinboost::GbmModel, who: &str| -> Result<(), String> {
        match &reference {
            None => {
                reference = Some(model.clone());
                Ok(())
            }
            Some(r) if bit_identical(r, model) => Ok(()),
            Some(_) => Err(format!("backend {who} trained a different model")),
        }
    };
    // Every backend reports its work through the same `SqlBackend::stats`
    // surface — no downcasting per implementation.
    let mut run =
        |backend: &dyn SqlBackend, label: &str, report: &mut Report| -> Result<(), String> {
            let model = train_dyadic_gbm(backend, &gen, 2)?;
            check(&model, label)?;
            let stats = backend.stats();
            report.row(&[
                label.to_string(),
                secs(model.train_time),
                secs(model.update_time),
                backend.capabilities().shards.to_string(),
                stats.statements.to_string(),
                stats.rows_shipped.to_string(),
            ]);
            Ok(())
        };
    for (label, config) in [
        ("D-mem", EngineConfig::duckdb_mem()),
        ("D-disk", EngineConfig::duckdb_disk()),
        ("X-row", EngineConfig::dbms_x_row()),
    ] {
        let backend = EngineBackend::labeled(config, label);
        run(&backend, label, &mut report)?;
    }
    {
        let backend = SqlTextBackend::in_memory();
        run(&backend, "sql-text", &mut report)?;
        report.note(format!(
            "sql-text survived {} print∘parse∘print round-trips",
            backend.stats().text_round_trips
        ));
    }
    for shards in [2usize, 4] {
        let backend = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "sales", "items_id");
        let label = backend.name().to_string();
        run(&backend, &label, &mut report)?;
    }
    report.note("every row trained the SAME model, bit for bit (dyadic recipe)");
    report.note("shuffle volume is per-key message partials + split-query summaries");
    report.print();
    Ok(())
}

/// `shards`: sharded-backend scaling sweep with the shard-local split
/// evaluation toggled off/on — the showcase is a high-cardinality
/// fact-resident feature, where the PR 3 path shipped O(cardinality)
/// per-value rows to the coordinator per split query. Gated behind the
/// `sharded` cargo feature so CI can `--features`-check the fan-out path
/// builds without paying for the sweep in default runs.
/// The shared scaling workload of the `shards` / `remote` sweeps: a
/// 40k-row fact with a high-cardinality (~8000 values) fact-resident
/// feature plus one small dimension, targets on the dyadic grid so every
/// configuration trains the same model bit for bit.
#[cfg(feature = "sharded")]
fn highcard_star() -> (
    joinboost_engine::Table,
    joinboost_engine::Table,
    joinboost_graph::JoinGraph,
) {
    use joinboost_engine::Table;
    use joinboost_graph::JoinGraph;

    let rows = 40_000usize;
    let card = 8_000i64;
    let dim_rows = 100i64;
    let fact = Table::from_columns(vec![
        ("k", Column::int((0..rows as i64).collect())),
        (
            "d_id",
            Column::int((0..rows as i64).map(|i| i % dim_rows).collect()),
        ),
        (
            "f",
            Column::int((0..rows as i64).map(|i| (i * 7919) % card).collect()),
        ),
        (
            "y",
            Column::float(
                (0..rows as i64)
                    .map(|i| {
                        let f = ((i * 7919) % card) as f64;
                        let noise = ((i * 2654435761) % 97) as f64;
                        f / 8.0 + ((i % dim_rows) % 10) as f64 * 4.0 + noise / 8.0
                    })
                    .collect(),
            ),
        ),
    ]);
    let dim = Table::from_columns(vec![
        ("d_id", Column::int((0..dim_rows).collect())),
        (
            "f_d",
            Column::int((0..dim_rows).map(|d| (d * 13) % 50).collect()),
        ),
    ]);
    let mut graph = JoinGraph::new();
    graph.add_relation("fact", &["f"]).expect("fact relation");
    graph.add_relation("dim", &["f_d"]).expect("dim relation");
    graph.add_edge("fact", "dim", &["d_id"]).expect("star edge");
    (fact, dim, graph)
}

#[cfg(feature = "sharded")]
fn shard_scale() -> Result<(), String> {
    use joinboost::backend::PushdownConfig;

    let (fact, dim, graph) = highcard_star();
    let mut report = Report::new(
        "Sharded split evaluation: 1 GBM iteration, high-cardinality feature (~8000 values)",
        &[
            "shards",
            "pushdown",
            "train(median of 3)",
            "pushdown_splits",
            "rows_shipped",
        ],
    );
    let mut reference: Option<joinboost::GbmModel> = None;
    let mut dense_rows: u64 = 0;
    let mut pushed_rows: u64 = 0;
    let mut json_rows: Vec<JsonValue> = Vec::new();
    for &(shards, pushdown) in &[(1usize, true), (2, false), (2, true), (4, false), (4, true)] {
        let mut times: Vec<f64> = Vec::new();
        let mut shipped = 0u64;
        let mut splits = 0u64;
        for _ in 0..3 {
            let backend = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "fact", "k");
            if !pushdown {
                backend.set_pushdown(false);
            } else {
                backend.set_pushdown_config(PushdownConfig::default());
            }
            backend
                .create_table("fact", fact.clone())
                .map_err(|e| e.to_string())?;
            backend
                .create_table("dim", dim.clone())
                .map_err(|e| e.to_string())?;
            let set =
                Dataset::new(&backend, graph.clone(), "fact", "y").map_err(|e| e.to_string())?;
            let mut params = TrainParams::default();
            params.num_iterations = 1;
            params.learning_rate = 0.5;
            params.leaf_quantization = (2.0f64).powi(-10);
            let (model, t) = time(|| train_gbm(&set, &params).expect("gbm"));
            times.push(t.as_secs_f64());
            let stats = backend.stats();
            shipped = stats.rows_shipped;
            splits = stats.pushdown_splits;
            match &reference {
                None => reference = Some(model),
                Some(r) => {
                    if !bit_identical(r, &model) {
                        return Err(format!(
                            "sharded x{shards} pushdown={pushdown} trained a different model"
                        ));
                    }
                }
            }
        }
        times.sort_by(|a, b| a.total_cmp(b));
        if shards == 4 {
            if pushdown {
                pushed_rows = shipped;
            } else {
                dense_rows = shipped;
            }
        }
        report.row(&[
            shards.to_string(),
            if pushdown { "on" } else { "off" }.to_string(),
            format!("{:.3}", times[times.len() / 2]),
            splits.to_string(),
            shipped.to_string(),
        ]);
        json_rows.push(JsonValue::obj(vec![
            ("shards", JsonValue::Int(shards as i64)),
            ("pushdown", JsonValue::Int(i64::from(pushdown))),
            ("train_median_s", JsonValue::Num(times[times.len() / 2])),
            ("pushdown_splits", JsonValue::Int(splits as i64)),
            ("rows_shipped", JsonValue::Int(shipped as i64)),
        ]));
    }
    if dense_rows > 0 && pushed_rows > 0 {
        report.note(format!(
            "4-shard shuffle volume per boosting round: {dense_rows} rows dense vs \
             {pushed_rows} rows pushed down ({:.1}x fewer)",
            dense_rows as f64 / pushed_rows as f64
        ));
    }
    report.note("every configuration trained the SAME model, bit for bit (dyadic recipe)");
    report.print();
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::Str("shards".into())),
        ("bit_identical", JsonValue::Int(1)),
        ("dense_rows_4shard", JsonValue::Int(dense_rows as i64)),
        ("pushed_rows_4shard", JsonValue::Int(pushed_rows as i64)),
        ("rows", JsonValue::Arr(json_rows)),
    ]);
    let path = write_bench_json("shards", &json).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(not(feature = "sharded"))]
fn shard_scale() -> Result<(), String> {
    Err("the `shards` sweep needs `--features sharded` (cargo run -p joinboost-bench --features sharded --release --bin experiments -- shards)".into())
}

/// `remote`: the same scaling sweep over *multi-process* sharding — each
/// shard is an engine behind a wire server on a loopback socket, so the
/// PR-4 shuffle-reduction claim becomes measurable in real bytes on the
/// wire, not just `rows_shipped` accounting. Models are asserted
/// bit-identical across every configuration, transport included.
///
/// With `flaky`, every server drops every 9th connection mid-stream (a
/// recovering fault, not a crash): the retrying clients reconnect,
/// resume their sessions and replay — and the bit-identity assertions
/// must *still* hold, which is the fault-tolerance claim measured rather
/// than merely unit-tested.
#[cfg(feature = "sharded")]
fn remote_scale(flaky: bool) -> Result<(), String> {
    use joinboost::backend::{PushdownConfig, RemoteOptions, RetryPolicy, WireServer};
    use joinboost_engine::Database;

    let (fact, dim, graph) = highcard_star();
    let mut report = Report::new(
        if flaky {
            "Remote sharding over sockets UNDER FAULT INJECTION (drop every 9th request): \
             1 GBM iteration, high-cardinality feature (~8000 values)"
        } else {
            "Remote sharding over sockets: 1 GBM iteration, high-cardinality feature (~8000 values)"
        },
        &[
            "servers",
            "pushdown",
            "train(median of 3)",
            "rows_shipped",
            "wire sent",
            "wire recv",
            "split rounds",
            "split recv/round",
        ],
    );
    let mb = |b: u64| format!("{:.2} MB", b as f64 / (1024.0 * 1024.0));
    let kb = |b: u64| format!("{:.1} KB", b as f64 / 1024.0);
    let mut reference: Option<joinboost::GbmModel> = None;
    let mut dense_recv: u64 = 0;
    let mut pushed_recv: u64 = 0;
    // Split-protocol volume at 4 servers, per refinement round: the
    // dense baseline re-ships every shard's absorbed table once per
    // split query (one ship-everything "round"); the pipelined-delta
    // coordinator receives boundary summaries only, and after round 0
    // only the subdivided intervals.
    let (mut dense_split_recv, mut dense_split_rounds) = (0u64, 0u64);
    let (mut delta_split_recv, mut delta_split_rounds) = (0u64, 0u64);
    let mut json_rows: Vec<JsonValue> = Vec::new();
    for &(shards, pushdown) in &[(1usize, true), (2, false), (2, true), (4, false), (4, true)] {
        let mut times: Vec<f64> = Vec::new();
        let (mut shipped, mut sent, mut received) = (0u64, 0u64, 0u64);
        let (mut split_rounds, mut split_sent, mut split_recv) = (0u64, 0u64, 0u64);
        for _ in 0..3 {
            // Real socket servers, one engine process-alike each (spawned
            // in-process so the sweep is self-contained; the shard_server
            // binary serves the same loop standalone).
            let servers: Vec<WireServer> = (0..shards)
                .map(|_| {
                    let mut b = WireServer::builder(Database::in_memory());
                    if flaky {
                        b = b
                            .drop_every(9)
                            .session_grace(std::time::Duration::from_secs(30));
                    }
                    b.spawn().expect("spawn wire server")
                })
                .collect();
            let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr()).collect();
            let opts = if flaky {
                // Millisecond backoffs: the drops are injected and local,
                // so the sweep should measure recovery, not sleeps.
                RemoteOptions {
                    retry: RetryPolicy {
                        max_retries: 4,
                        base_backoff: std::time::Duration::from_millis(5),
                        max_backoff: std::time::Duration::from_millis(100),
                        jitter: 0.2,
                    },
                    ..RemoteOptions::default()
                }
            } else {
                RemoteOptions::default()
            };
            let backend =
                ShardedBackend::remote(&addrs, EngineConfig::duckdb_mem(), "fact", "k", opts)
                    .map_err(|e| e.to_string())?;
            if !pushdown {
                backend.set_pushdown(false);
            } else {
                backend.set_pushdown_config(PushdownConfig::default());
            }
            backend
                .create_table("fact", fact.clone())
                .map_err(|e| e.to_string())?;
            backend
                .create_table("dim", dim.clone())
                .map_err(|e| e.to_string())?;
            let set =
                Dataset::new(&backend, graph.clone(), "fact", "y").map_err(|e| e.to_string())?;
            let mut params = TrainParams::default();
            params.num_iterations = 1;
            params.learning_rate = 0.5;
            params.leaf_quantization = (2.0f64).powi(-10);
            let (model, t) = time(|| train_gbm(&set, &params).expect("gbm"));
            times.push(t.as_secs_f64());
            let stats = backend.stats();
            shipped = stats.rows_shipped;
            sent = stats.bytes_sent;
            received = stats.bytes_received;
            split_rounds = stats.split_rounds;
            split_sent = stats.split_bytes_sent;
            split_recv = stats.split_bytes_received;
            match &reference {
                None => reference = Some(model),
                Some(r) => {
                    if !bit_identical(r, &model) {
                        return Err(format!(
                            "remote x{shards} pushdown={pushdown} trained a different model"
                        ));
                    }
                }
            }
        }
        times.sort_by(|a, b| a.total_cmp(b));
        if shards == 4 {
            if pushdown {
                pushed_recv = received;
                delta_split_recv = split_recv;
                delta_split_rounds = split_rounds;
            } else {
                dense_recv = received;
                dense_split_recv = split_recv;
                dense_split_rounds = split_rounds;
            }
        }
        report.row(&[
            shards.to_string(),
            if pushdown { "on" } else { "off" }.to_string(),
            format!("{:.3}", times[times.len() / 2]),
            shipped.to_string(),
            mb(sent),
            mb(received),
            split_rounds.to_string(),
            kb(split_recv / split_rounds.max(1)),
        ]);
        json_rows.push(JsonValue::obj(vec![
            ("servers", JsonValue::Int(shards as i64)),
            ("pushdown", JsonValue::Int(i64::from(pushdown))),
            ("train_median_s", JsonValue::Num(times[times.len() / 2])),
            ("rows_shipped", JsonValue::Int(shipped as i64)),
            ("wire_bytes_sent", JsonValue::Int(sent as i64)),
            ("wire_bytes_received", JsonValue::Int(received as i64)),
            ("split_rounds", JsonValue::Int(split_rounds as i64)),
            ("split_bytes_sent", JsonValue::Int(split_sent as i64)),
            ("split_bytes_received", JsonValue::Int(split_recv as i64)),
        ]));
    }
    if dense_recv > 0 && pushed_recv > 0 {
        report.note(format!(
            "4-server bytes received by the coordinator: {} dense vs {} pushed down \
             ({:.1}x fewer wire bytes)",
            mb(dense_recv),
            mb(pushed_recv),
            dense_recv as f64 / pushed_recv as f64
        ));
    }
    let dense_per_round = dense_split_recv / dense_split_rounds.max(1);
    let delta_per_round = delta_split_recv / delta_split_rounds.max(1);
    if dense_per_round > 0 && delta_per_round > 0 {
        report.note(format!(
            "4-server split traffic per refinement round: {} dense re-ship \
             ({} rounds) vs {} pipelined delta ({} rounds) — {:.1}x fewer recv \
             bytes per round",
            kb(dense_per_round),
            dense_split_rounds,
            kb(delta_per_round),
            delta_split_rounds,
            dense_per_round as f64 / delta_per_round as f64
        ));
    }
    if flaky {
        report.note(
            "every configuration trained the SAME model, bit for bit, across processes — \
             with connections dropped every 9 requests and recovered by session resume + replay",
        );
    } else {
        report.note("every configuration trained the SAME model, bit for bit, across processes");
    }
    report.print();
    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::Str("remote".into())),
        ("bit_identical", JsonValue::Int(1)),
        ("flaky", JsonValue::Int(i64::from(flaky))),
        ("dense_recv_4server", JsonValue::Int(dense_recv as i64)),
        ("pushed_recv_4server", JsonValue::Int(pushed_recv as i64)),
        (
            "dense_split_recv_per_round_4server",
            JsonValue::Int(dense_per_round as i64),
        ),
        (
            "delta_split_recv_per_round_4server",
            JsonValue::Int(delta_per_round as i64),
        ),
        ("rows", JsonValue::Arr(json_rows)),
    ]);
    let path = write_bench_json("remote", &json).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(not(feature = "sharded"))]
fn remote_scale(_flaky: bool) -> Result<(), String> {
    Err("the `remote` sweep needs `--features sharded` (cargo run -p joinboost-bench --features sharded --release --bin experiments -- remote)".into())
}

/// A spawned `shard_server` child process (killed on drop). The binary is
/// looked up next to the experiments binary itself, so a plain
/// `cargo build --release` of the workspace sets everything up.
struct ShardServerProc {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl ShardServerProc {
    fn spawn(bin: &std::path::Path) -> Result<ShardServerProc, String> {
        use std::io::BufRead as _;
        let mut child = std::process::Command::new(bin)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().ok_or("shard_server stdout not piped")?;
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read shard_server announcement: {e}"))?;
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .ok_or_else(|| format!("unexpected shard_server announcement: {line:?}"))?
            .parse()
            .map_err(|e| format!("shard_server announced a bad address: {e}"))?;
        Ok(ShardServerProc { child, addr })
    }
}

impl Drop for ShardServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// `serve`: the serving tier end-to-end, against *real separate
/// processes*. Spawns `shard_server` children, loads a keyed Favorita
/// star across them, demos the job API (submit → poll → predict) on one
/// shard, trains on the sharded backend, compiles the model into message
/// tables, spot-checks the factorized path bit-for-bit against the
/// materialized-join oracle, then sweeps concurrent clients × batch size
/// measuring p50/p99 predict latency and scores/sec. Writes
/// `BENCH_serve.json`.
fn serve_bench() -> Result<(), String> {
    use joinboost::backend::{
        JobSpec, JobStatus, RemoteConnection, RemoteOptions, ServeClient, ShardTransport,
    };
    use joinboost::{FactorizedScorer, JoinScorer, Scorer};
    use joinboost_engine::table::ColumnMeta;
    use joinboost_engine::Table;

    const SHARDS: usize = 2;
    const FACT_ROWS: usize = 8000;
    const CLIENTS: &[usize] = &[1, 2, 4];
    const BATCHES: &[usize] = &[1, 64, 1024];

    // The serving processes: shard_server binaries next to this one.
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let bin_name = if cfg!(windows) {
        "shard_server.exe"
    } else {
        "shard_server"
    };
    let server_bin = exe.with_file_name(bin_name);
    if !server_bin.exists() {
        return Err(format!(
            "shard_server binary not found at {} — build it first:\n  \
             cargo build --release -p joinboost --bin shard_server",
            server_bin.display()
        ));
    }
    let procs: Vec<ShardServerProc> = (0..SHARDS)
        .map(|_| ShardServerProc::spawn(&server_bin))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<std::net::SocketAddr> = procs.iter().map(|p| p.addr).collect();
    println!("spawned {SHARDS} shard_server processes: {addrs:?}");

    // Keyed workload: Favorita star with an explicit predict key on the
    // fact table, target quantized to the dyadic 1/8 grid so every path
    // (local join, sharded factorized, over-the-wire) scores the same
    // bits.
    let gen = favorita(&FavoritaConfig {
        fact_rows: FACT_ROWS,
        dim_rows: 40,
        noise: 1.0,
        ..Default::default()
    });
    let keyed = |name: &str, t: &Table| -> Table {
        let mut t = t.clone();
        if name == "sales" {
            t.push_column(
                ColumnMeta::new("sale_id"),
                Column::int((0..t.num_rows() as i64).collect()),
            );
        }
        t
    };
    let load = |backend: &dyn SqlBackend| -> Result<(), String> {
        for (name, t) in &gen.tables {
            backend
                .create_table(name, keyed(name, t))
                .map_err(|e| e.to_string())?;
        }
        backend
            .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
            .map(|_| ())
            .map_err(|e| e.to_string())
    };

    let sharded = ShardedBackend::remote(
        &addrs,
        EngineConfig::duckdb_mem(),
        "sales",
        "sale_id",
        RemoteOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    load(&sharded)?;

    // --- Job API demo: train where (part of) the data lives. Shard 0
    // holds its fact partition plus the replicated dimensions, so a
    // training job against it is self-contained.
    let job_spec = JobSpec {
        relations: gen
            .graph
            .relations()
            .map(|(_, r)| (r.name.clone(), r.features.clone()))
            .collect(),
        edges: gen
            .graph
            .edges()
            .iter()
            .map(|e| {
                (
                    gen.graph.name(e.a).to_string(),
                    gen.graph.name(e.b).to_string(),
                    e.keys.clone(),
                )
            })
            .collect(),
        target_relation: "sales".into(),
        target_column: "net_profit".into(),
        key_column: Some("sale_id".into()),
        num_iterations: 3,
        ..JobSpec::default()
    };
    let serve_client = ServeClient::connect(addrs[0]).map_err(|e| e.to_string())?;
    let job_id = serve_client.submit(&job_spec).map_err(|e| e.to_string())?;
    let (done, job_time) = time(|| serve_client.wait(job_id));
    let job_iterations = match done.map_err(|e| e.to_string())? {
        JobStatus::Done { iterations } => iterations,
        other => return Err(format!("job {job_id} ended {other:?}, expected Done")),
    };
    let probe: Vec<i64> = (0..64).collect();
    let job_scored = serve_client
        .predict(job_id, &probe)
        .map_err(|e| e.to_string())?
        .iter()
        .filter(|s| s.is_some())
        .count();
    println!(
        "job {job_id} on shard 0: Done after {job_iterations} iterations in {}, \
         scored {job_scored}/{} probed keys (shard 0's partition)",
        secs(job_time),
        probe.len()
    );

    // --- Train on the sharded backend and deploy factorized scoring.
    let set = Dataset::new(&sharded, gen.graph.clone(), "sales", "net_profit")
        .map_err(|e| e.to_string())?;
    let mut params = TrainParams::default();
    params.num_iterations = 4;
    params.learning_rate = 0.5;
    params.leaf_quantization = (2.0f64).powi(-10);
    let (model, train_time) = time(|| train_gbm(&set, &params).expect("gbm"));
    let fscorer = FactorizedScorer::compile(&set, &model, "sale_id").map_err(|e| e.to_string())?;

    // Oracle: the same data and recipe on a local engine, scored through
    // the materialized join. Models are bit-identical across backends, so
    // the two scorers must agree on every bit of every key.
    let local = EngineBackend::new(EngineConfig::duckdb_mem());
    load(&local)?;
    let local_set = Dataset::new(&local, gen.graph.clone(), "sales", "net_profit")
        .map_err(|e| e.to_string())?;
    let local_model = train_gbm(&local_set, &params).expect("gbm local");
    if !bit_identical(&model, &local_model) {
        return Err("sharded and local training diverged".into());
    }
    let oracle =
        JoinScorer::compile(&local_set, &local_model, "sale_id").map_err(|e| e.to_string())?;
    let check_keys: Vec<i64> = (0..(FACT_ROWS as i64 + 10)).collect();
    let want = oracle.score_batch(&check_keys).map_err(|e| e.to_string())?;
    let got = fscorer
        .score_batch(&check_keys)
        .map_err(|e| e.to_string())?;
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w.map(f64::to_bits) != g.map(f64::to_bits) {
            return Err(format!(
                "factorized score diverged from the join oracle at key {i}: {w:?} vs {g:?}"
            ));
        }
    }
    println!(
        "trained in {} on {SHARDS} server processes; factorized scores bit-identical \
         to the materialized-join oracle on {} keys",
        secs(train_time),
        check_keys.len()
    );

    // --- Latency sweep. Each client thread holds its own connection per
    // shard and scores batches the way a deployed scorer would: one
    // `PredictBatch` per shard (partials from 0.0), ⊕-merge, add
    // init_score once. Dyadic leaves make the merge exact, so this path
    // answers the same bits as the oracle — asserted once above, and
    // spot-checked here on the first merged batch.
    let spec = fscorer.spec().clone();
    let merge = |partials: &[Vec<(bool, f64)>], n: usize| -> Vec<Option<f64>> {
        (0..n)
            .map(|i| {
                let mut sum = None;
                for shard in partials {
                    if shard[i].0 {
                        *sum.get_or_insert(0.0) += shard[i].1;
                    }
                }
                sum.map(|s| spec.init_score + s)
            })
            .collect()
    };
    {
        let conns: Vec<RemoteConnection> = addrs
            .iter()
            .map(|a| RemoteConnection::builder(a).connect())
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        let partials: Vec<Vec<(bool, f64)>> = conns
            .iter()
            .map(|c| c.predict_partials(&spec, &probe))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        let merged = merge(&partials, probe.len());
        for (i, m) in merged.iter().enumerate() {
            if m.map(f64::to_bits) != want[i].map(f64::to_bits) {
                return Err(format!(
                    "client-side partial merge diverged from the oracle at key {i}"
                ));
            }
        }
    }

    let mut report = Report::new(
        format!("Serving latency: {SHARDS} shard_server processes, factorized PredictBatch"),
        &[
            "clients",
            "batch",
            "batches",
            "p50(ms)",
            "p99(ms)",
            "scores/sec",
        ],
    );
    let pct = |sorted: &[f64], q: f64| -> f64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    };
    let mut json_rows: Vec<JsonValue> = Vec::new();
    for &clients in CLIENTS {
        for &batch in BATCHES {
            let per_client = (4096 / batch).clamp(8, 256);
            let started = Instant::now();
            let mut latencies: Vec<f64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let spec = &spec;
                        let addrs = &addrs;
                        scope.spawn(move || -> Result<Vec<f64>, String> {
                            let conns: Vec<RemoteConnection> = addrs
                                .iter()
                                .map(|a| RemoteConnection::builder(a).connect())
                                .collect::<Result<_, _>>()
                                .map_err(|e| e.to_string())?;
                            let mut lat = Vec::with_capacity(per_client);
                            for it in 0..per_client {
                                let keys: Vec<i64> = (0..batch)
                                    .map(|j| ((c * 7919 + it * 131 + j * 17) % FACT_ROWS) as i64)
                                    .collect();
                                let t0 = Instant::now();
                                let mut partials = Vec::with_capacity(conns.len());
                                for conn in &conns {
                                    partials.push(
                                        conn.predict_partials(spec, &keys)
                                            .map_err(|e| e.to_string())?,
                                    );
                                }
                                let merged = merge(&partials, keys.len());
                                assert!(merged.iter().all(|s| s.is_some()));
                                lat.push(t0.elapsed().as_secs_f64());
                            }
                            Ok(lat)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect::<Result<Vec<_>, String>>()
                    .map(|v| v.into_iter().flatten().collect())
            })?;
            let wall = started.elapsed().as_secs_f64();
            latencies.sort_by(|a, b| a.total_cmp(b));
            let total_scores = (clients * per_client * batch) as f64;
            let (p50, p99) = (pct(&latencies, 0.50) * 1e3, pct(&latencies, 0.99) * 1e3);
            let throughput = total_scores / wall;
            report.row(&[
                clients.to_string(),
                batch.to_string(),
                per_client.to_string(),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
                format!("{throughput:.0}"),
            ]);
            json_rows.push(JsonValue::obj(vec![
                ("clients", JsonValue::Int(clients as i64)),
                ("batch", JsonValue::Int(batch as i64)),
                ("batches_per_client", JsonValue::Int(per_client as i64)),
                ("p50_ms", JsonValue::Num(p50)),
                ("p99_ms", JsonValue::Num(p99)),
                ("scores_per_sec", JsonValue::Num(throughput)),
            ]));
        }
    }
    report.note(format!(
        "scoring a key = {} dictionary lookups + ⊕-adds per shard; the join is never materialized",
        1 + gen.graph.num_relations()
    ));
    report.note("merged scores asserted bit-identical to the materialized-join oracle");
    report.print();

    let json = JsonValue::obj(vec![
        ("experiment", JsonValue::Str("serve".into())),
        ("shards", JsonValue::Int(SHARDS as i64)),
        ("fact_rows", JsonValue::Int(FACT_ROWS as i64)),
        ("train_s", JsonValue::Num(train_time.as_secs_f64())),
        (
            "spot_check",
            JsonValue::obj(vec![
                ("keys", JsonValue::Int(check_keys.len() as i64)),
                ("bit_identical", JsonValue::Int(1)),
            ]),
        ),
        (
            "job",
            JsonValue::obj(vec![
                ("id", JsonValue::Int(job_id as i64)),
                ("iterations", JsonValue::Int(job_iterations as i64)),
                ("wait_s", JsonValue::Num(job_time.as_secs_f64())),
                ("keys_probed", JsonValue::Int(probe.len() as i64)),
                ("keys_scored", JsonValue::Int(job_scored as i64)),
            ]),
        ),
        ("sweep", JsonValue::Arr(json_rows)),
    ]);
    let path = write_bench_json("serve", &json).map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    Ok(())
}
