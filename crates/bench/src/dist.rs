//! Distributed ("multi-node") decision-tree training over the partitioned
//! engine — the harness behind Figures 12 and 13.
//!
//! The paper runs JoinBoost on Dask-SQL / a cloud warehouse: dimension
//! tables replicated, the fact table hash-partitioned, every aggregation
//! executed per machine and merged. Semi-ring aggregates merge by `⊕`
//! (associative + commutative), so the per-machine partials just sum.

use std::time::{Duration, Instant};

use joinboost_datagen::favorita::Generated;
use joinboost_engine::partition::PartitionedDatabase;
use joinboost_engine::EngineConfig;
use joinboost_semiring::variance_reduction;

/// Load a generated snowflake onto `machines` workers: the target relation
/// is hash-partitioned on its first join key, everything else replicated.
pub fn deploy(gen: &Generated, machines: usize) -> PartitionedDatabase {
    let p = PartitionedDatabase::new(machines, EngineConfig::duckdb_mem());
    let fact_name = &gen.target_relation;
    for (name, t) in &gen.tables {
        if name.eq_ignore_ascii_case(fact_name) {
            // Partition on the first column (a join key in our generators).
            let key = t.meta[0].name.clone();
            p.partition_table(name, t, &key).expect("partition");
        } else {
            p.replicate_table(name, t).expect("replicate");
        }
    }
    p
}

/// One node split predicate as SQL text.
#[derive(Clone)]
struct DistNode {
    preds: Vec<String>,
    count: f64,
    sum: f64,
    depth: usize,
}

/// Train a depth-limited decision tree over the cluster, timing the whole
/// process. Every split evaluation is a distributed group-by aggregation
/// (executed per machine, shuffled, merged). Returns `(splits, wall)`.
pub fn train_partitioned_tree(
    p: &PartitionedDatabase,
    gen: &Generated,
    max_depth: usize,
    min_leaf: f64,
) -> (usize, Duration) {
    let t0 = Instant::now();
    let g = &gen.graph;
    let fact = gen.target_relation.clone();
    let target = gen.target_column.clone();
    // The denormalizing FROM clause (fact joined with every relation,
    // BFS order so keys are in scope) — the plan Dask-SQL would run.
    let root = g.rel_id(&fact).expect("fact exists");
    let mut from = format!("FROM {fact}");
    for (rel, keys) in g.sampling_order(root).iter().skip(1) {
        from.push_str(&format!(
            " JOIN {} USING ({})",
            g.name(*rel),
            keys.join(", ")
        ));
    }
    let features: Vec<String> = g.all_features().into_iter().map(|(f, _)| f).collect();

    let totals = p
        .query_merged(
            &format!("SELECT COUNT(*) AS c, SUM({target}) AS s {from}"),
            &[],
            &["c", "s"],
        )
        .expect("totals");
    let c = totals.column(None, "c").unwrap().f64_at(0).unwrap_or(0.0);
    let s = totals.column(None, "s").unwrap().f64_at(0).unwrap_or(0.0);

    let mut frontier = vec![DistNode {
        preds: Vec::new(),
        count: c,
        sum: s,
        depth: 0,
    }];
    let mut splits = 0;
    while let Some(node) = frontier.pop() {
        if node.depth >= max_depth || node.count < 2.0 * min_leaf {
            continue;
        }
        let where_clause = if node.preds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", node.preds.join(" AND "))
        };
        let mut best: Option<(f64, String, f64, f64, f64)> = None;
        for f in &features {
            let sql = format!(
                "SELECT {f} AS val, COUNT(*) AS c, SUM({target}) AS s {from}{where_clause} GROUP BY {f}"
            );
            let merged = p
                .query_merged(&sql, &["val"], &["c", "s"])
                .expect("split agg");
            // Sort by value, prefix-scan, evaluate variance reduction.
            let mut rows: Vec<(f64, f64, f64)> = (0..merged.num_rows())
                .filter_map(|i| {
                    Some((
                        merged.column(None, "val").ok()?.f64_at(i)?,
                        merged.column(None, "c").ok()?.f64_at(i)?,
                        merged.column(None, "s").ok()?.f64_at(i)?,
                    ))
                })
                .collect();
            rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let (mut ca, mut sa) = (0.0, 0.0);
            for (v, cc, ss) in rows {
                ca += cc;
                sa += ss;
                if ca < min_leaf || node.count - ca < min_leaf {
                    continue;
                }
                if let Some(gain) = variance_reduction(node.count, node.sum, ca, sa) {
                    if gain > 1e-9 && best.as_ref().is_none_or(|b| gain > b.0) {
                        best = Some((gain, f.clone(), v, ca, sa));
                    }
                }
            }
        }
        if let Some((_, f, v, ca, sa)) = best {
            splits += 1;
            let mut left = node.preds.clone();
            left.push(format!("{f} <= {v}"));
            let mut right = node.preds.clone();
            right.push(format!("{f} > {v}"));
            frontier.push(DistNode {
                preds: left,
                count: ca,
                sum: sa,
                depth: node.depth + 1,
            });
            frontier.push(DistNode {
                preds: right,
                count: node.count - ca,
                sum: node.sum - sa,
                depth: node.depth + 1,
            });
        }
    }
    (splits, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_datagen::{tpcds, TpcConfig};

    #[test]
    fn partitioned_tree_is_machine_count_invariant() {
        let gen = tpcds(&TpcConfig {
            scale_factor: 0.3,
            base_fact_rows: 2000,
            seed: 3,
        });
        let p1 = deploy(&gen, 1);
        let (s1, _) = train_partitioned_tree(&p1, &gen, 2, 5.0);
        let p3 = deploy(&gen, 3);
        let (s3, _) = train_partitioned_tree(&p3, &gen, 2, 5.0);
        assert_eq!(s1, s3, "split count must not depend on partitioning");
        assert!(s1 >= 1);
        assert!(p3.shuffle_bytes.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }
}
