//! Plain-text table reporting (the harness prints the same rows/series
//! the paper's figures plot), plus the machine-readable `BENCH_*.json`
//! writer the CI smoke job parses.

use std::fmt::Write as _;

/// A minimal JSON value — just enough for benchmark reports, so the
/// harness stays free of serialization dependencies.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A number (rendered with full precision; non-finite becomes null).
    Num(f64),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A string (escaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object entries.
    pub fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                    // `{}` prints integral floats without a point; keep
                    // them unambiguous numbers anyway (JSON allows both).
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write `value` to `BENCH_<name>.json` in the working directory and
/// return the path. Every sweep experiment emits one of these alongside
/// its printed table, so CI (and plotting scripts) parse results instead
/// of scraping stdout.
pub fn write_bench_json(name: &str, value: &JsonValue) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(path)
}

/// A simple aligned text table.
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Report {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut r = Report::new("t", &["a", "long_header"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["100".into(), "x".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("== t =="));
        assert!(s.contains("long_header"));
        assert!(s.contains("note: hello"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["1".into()]);
    }

    #[test]
    fn json_renders_and_escapes() {
        let v = JsonValue::obj(vec![
            ("name", JsonValue::Str("a\"b\\c\nd".into())),
            ("n", JsonValue::Int(-3)),
            ("x", JsonValue::Num(1.5)),
            ("nan", JsonValue::Num(f64::NAN)),
            (
                "rows",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Num(0.25)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"a\"b\\c\nd","n":-3,"x":1.5,"nan":null,"rows":[1,0.25]}"#
        );
    }
}
