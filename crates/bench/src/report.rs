//! Plain-text table reporting (the harness prints the same rows/series
//! the paper's figures plot).

use std::fmt::Write as _;

/// A simple aligned text table.
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Report {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut r = Report::new("t", &["a", "long_header"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["100".into(), "x".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("== t =="));
        assert!(s.contains("long_header"));
        assert!(s.contains("note: hello"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["1".into()]);
    }
}
