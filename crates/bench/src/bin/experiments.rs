//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <name>    run one experiment (fig5, fig8a, ..., losses)
//! experiments all       run everything
//! experiments help      list experiments
//! ```

use joinboost_bench::experiments;

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "help".to_string());
    if arg == "help" || arg == "--help" || arg == "-h" {
        println!("usage: experiments <name|all>\n\navailable experiments:");
        for (name, desc) in experiments::EXPERIMENTS {
            println!("  {name:<8} {desc}");
        }
        return;
    }
    if let Err(e) = experiments::run(&arg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
