//! Experiment harness for the JoinBoost reproduction.
//!
//! `cargo run -p joinboost-bench --release --bin experiments -- <figN|all>`
//! regenerates the series of every table and figure in the paper's
//! evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for recorded outputs). Criterion micro-benchmarks live under
//! `benches/`.

pub mod dist;
pub mod experiments;
pub mod report;
pub mod synth;

pub use report::Report;

use std::time::{Duration, Instant};

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Seconds as a compact string.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
