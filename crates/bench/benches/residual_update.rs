//! Residual update methods over the Figure-5 fact table.

use criterion::{criterion_group, criterion_main, Criterion};
use joinboost_datagen::{fig5_fact_table, Fig5Config};
use joinboost_engine::{Database, EngineConfig};

fn bench_updates(c: &mut Criterion) {
    let cfg = Fig5Config {
        rows: 50_000,
        ..Default::default()
    };
    let case = "CASE WHEN d <= 5000 THEN s - 0.25 ELSE s END";

    c.bench_function("update_in_place", |b| {
        let db = Database::in_memory();
        db.create_table("f", fig5_fact_table(&cfg)).unwrap();
        b.iter(|| {
            db.execute("UPDATE f SET s = s - 0.25 WHERE d <= 5000")
                .unwrap()
        })
    });

    c.bench_function("create_table", |b| {
        let db = Database::in_memory();
        db.create_table("f", fig5_fact_table(&cfg)).unwrap();
        b.iter(|| {
            db.execute(&format!(
                "CREATE OR REPLACE TABLE f AS SELECT {case} AS s, d FROM f"
            ))
            .unwrap()
        })
    });

    c.bench_function("column_swap", |b| {
        let db = Database::new(EngineConfig::d_swap());
        db.create_table("f", fig5_fact_table(&cfg)).unwrap();
        b.iter(|| {
            db.execute(&format!("CREATE TABLE delta AS SELECT {case} AS s FROM f"))
                .unwrap();
            db.execute("SWAP COLUMN f.s WITH delta.s").unwrap();
            db.execute("DROP TABLE delta").unwrap();
        })
    });

    c.bench_function("interop_pointer_swap", |b| {
        let db = Database::in_memory();
        db.register_external("f", &fig5_fact_table(&cfg));
        b.iter(|| {
            let t = db.execute(&format!("SELECT {case} AS s FROM f")).unwrap();
            db.external("f")
                .unwrap()
                .replace_column("s", t.columns[0].clone())
                .unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_updates
}
criterion_main!(benches);
