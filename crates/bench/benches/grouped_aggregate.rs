//! Grouped aggregation micro-benchmarks over the query shapes sqlgen
//! actually emits: one `SUM` per ring component (3 for the variance ring)
//! grouped by a feature column, and the `ORDER BY .. LIMIT 1` winner
//! selection of split queries.
//!
//! Caveat for reading results: the first bench_function in a process can
//! run ~2x slower than steady state on constrained containers (process /
//! host warm-up), so compare a benchmark against the *same* benchmark in
//! another run (`scripts/bench_diff.sh`), not against its neighbours in
//! one run.

use criterion::{criterion_group, criterion_main, Criterion};
use joinboost_bench::synth::grouped_fact_table;
use joinboost_engine::{Database, EngineConfig};

const ROWS: usize = 200_000;

fn load(config: EngineConfig, groups: u64) -> Database {
    let db = Database::new(config);
    db.create_table("t", grouped_fact_table(ROWS, groups))
        .unwrap();
    db
}

/// The variance-ring message shape: three SUMs in one pass, int group key.
const SUM3: &str = "SELECT k, COUNT(*) AS c, SUM(y) AS s, SUM(y * y) AS q FROM t GROUP BY k";

/// Same aggregates grouped by a dictionary-encoded string key.
const SUM3_STR: &str = "SELECT ks, COUNT(*) AS c, SUM(y) AS s, SUM(y * y) AS q FROM t GROUP BY ks";

/// The split-query winner selection: criterion sort with LIMIT 1.
const TOP1: &str = "SELECT k, SUM(y * y) - SUM(y) * SUM(y) / COUNT(*) AS crit \
                    FROM t GROUP BY k ORDER BY crit DESC LIMIT 1";

fn bench_grouped_aggregate(c: &mut Criterion) {
    let db = load(EngineConfig::duckdb_mem(), 100);
    c.bench_function("sum3_groupby_int", |b| b.iter(|| db.query(SUM3).unwrap()));
    c.bench_function("sum3_groupby_str", |b| {
        b.iter(|| db.query(SUM3_STR).unwrap())
    });

    // Many groups: stresses both grouping and the top-k winner selection.
    let db_wide = load(EngineConfig::duckdb_mem(), 20_000);
    c.bench_function("top1_split_query", |b| {
        b.iter(|| db_wide.query(TOP1).unwrap())
    });

    // Parallel fused aggregation (aggregate-sliced, bit-identical to
    // serial). The knob is 4, but workers are capped by the number of
    // scan-needing aggregates — 2 here, since COUNT(*) is answered from
    // the grouping pass's group sizes.
    let db_par = load(
        EngineConfig {
            agg_threads: 4,
            ..EngineConfig::duckdb_mem()
        },
        100,
    );
    c.bench_function("sum3_groupby_int_par4", |b| {
        b.iter(|| db_par.query(SUM3).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_grouped_aggregate
}
criterion_main!(benches);
