//! Exact vs histogram-binned split evaluation (Appendix D.3).

use criterion::{criterion_group, criterion_main, Criterion};
use joinboost_engine::{Column, Database, Table};

fn bench_histogram(c: &mut Criterion) {
    let n = 50_000usize;
    let db = Database::in_memory();
    let vals: Vec<f64> = (0..n).map(|i| ((i * 7919) % 10_000) as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
    db.create_table(
        "r",
        Table::from_columns(vec![("f", Column::float(vals)), ("y", Column::float(ys))]),
    )
    .unwrap();

    c.bench_function("split_exact_10k_distinct", |b| {
        b.iter(|| {
            db.query(
                "SELECT val, c, s FROM (SELECT f AS val, COUNT(*) AS c, SUM(y) AS s \
                 FROM r GROUP BY f) AS g ORDER BY val",
            )
            .unwrap()
        })
    });

    c.bench_function("split_binned_32", |b| {
        b.iter(|| {
            db.query(
                "SELECT val, c, s FROM (SELECT MAX(f) AS val, COUNT(*) AS c, SUM(y) AS s \
                 FROM r GROUP BY FLOOR(f / 312.5)) AS g ORDER BY val",
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_histogram
}
criterion_main!(benches);
