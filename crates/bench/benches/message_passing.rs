//! Factorized message passing vs naive join-then-aggregate — the
//! asymptotic heart of the paper (Section 3.1).

use criterion::{criterion_group, criterion_main, Criterion};
use joinboost::messages::{Factorizer, NodeContext};
use joinboost::sqlgen::RingKind;
use joinboost::Dataset;
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::Database;
use joinboost_sql::ast::Expr;

fn bench_message_passing(c: &mut Criterion) {
    let gen = favorita(&FavoritaConfig {
        fact_rows: 20_000,
        dim_rows: 100,
        ..Default::default()
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();

    c.bench_function("naive_join_aggregate", |b| {
        b.iter(|| {
            db.query(
                "SELECT f_items AS val, COUNT(*) AS c, SUM(net_profit) AS s FROM sales \
                 JOIN items USING (items_id) JOIN stores USING (stores_id) \
                 JOIN trans USING (trans_id) JOIN oil USING (oil_id) \
                 JOIN dates USING (dates_id) GROUP BY f_items",
            )
            .unwrap()
        })
    });

    c.bench_function("factorized_absorb", |b| {
        b.iter(|| {
            // Fresh factorizer per iteration: measures uncached message
            // passing (identity dims dropped, one fact message).
            let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
            let mut fx = Factorizer::new(&set, RingKind::Variance);
            fx.set_annotation(
                set.target_rel(),
                vec![Expr::int(1), Expr::col("net_profit")],
            );
            let items = set.graph.rel_id("items").unwrap();
            let spec = joinboost::messages::GroupSpec::plain("f_items");
            let q = fx.absorb(items, Some(&spec), &NodeContext::root()).unwrap();
            db.query(&q.to_string()).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_message_passing
}
criterion_main!(benches);
