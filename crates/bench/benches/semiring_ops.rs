//! Semi-ring arithmetic throughput: `⊕`-folding lifted annotations and
//! `⊗`-combining messages (the inner loops of factorized aggregation).

use criterion::{criterion_group, criterion_main, Criterion};
use joinboost_semiring::ring::SemiRing;
use joinboost_semiring::VarianceRing;
use std::hint::black_box;

fn bench_semiring(c: &mut Criterion) {
    let ring = VarianceRing;
    let ys: Vec<f64> = (0..100_000).map(|i| (i % 997) as f64).collect();
    c.bench_function("variance_ring_sum_lifted_100k", |b| {
        b.iter(|| ring.sum_lifted(black_box(&ys).iter()))
    });
    let a = vec![8.0, 16.0, 36.0];
    let bb = vec![3.0, 2.0, 1.0];
    c.bench_function("variance_ring_mul", |b| {
        b.iter(|| ring.mul(black_box(&a), black_box(&bb)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_semiring
}
criterion_main!(benches);
