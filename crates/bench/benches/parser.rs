//! Parser throughput on the paper's Example 2 query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let example2 = "SELECT A, -(100.0/8.0) * 100.0 + (s/c) * s \
                    + (100.0 - s)/(8.0 - c) * (100.0 - s) AS criteria \
                    FROM (SELECT A, SUM(c) OVER (ORDER BY A) AS c, SUM(s) OVER (ORDER BY A) AS s \
                    FROM (SELECT A, SUM(Y) AS s, COUNT(*) AS c FROM R GROUP BY A) AS g) AS w \
                    ORDER BY criteria DESC LIMIT 1";
    c.bench_function("parse_example2_split_query", |b| {
        b.iter(|| joinboost_sql::parse(black_box(example2)).unwrap())
    });
    let update = "UPDATE f SET s = CASE WHEN k1 IN (SELECT k1 FROM m1) AND k2 IN (SELECT k2 FROM m2) THEN s - 0.25 ELSE s END";
    c.bench_function("parse_residual_update", |b| {
        b.iter(|| joinboost_sql::parse(black_box(update)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_parser
}
criterion_main!(benches);
