//! Message cache with cross-node sharing (Section 5.5.1).
//!
//! Every message is identified by `(from, to, signature)` where the
//! signature encodes the conjunction of split predicates already applied
//! to the sender's subtree. A child tree node reuses every cached message
//! whose subtree does not contain the newly split relation — the paper's
//! key optimization over LMFAO-style per-node batching (3× on Favorita).

use std::collections::HashMap;

use crate::graph::RelId;

/// Key of a cached message: sender, receiver and a canonical signature of
/// the predicates applied to the sender's side.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MessageKey {
    pub from: RelId,
    pub to: RelId,
    pub signature: String,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// A message cache mapping keys to an arbitrary payload (JoinBoost stores
/// the name of the materialized message table).
#[derive(Debug, Default)]
pub struct MessageCache<V> {
    entries: HashMap<MessageKey, V>,
    stats: CacheStats,
}

impl<V> MessageCache<V> {
    pub fn new() -> Self {
        MessageCache {
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a message; counts a hit or miss.
    pub fn get(&mut self, key: &MessageKey) -> Option<&V> {
        match self.entries.get(key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a computed message.
    pub fn insert(&mut self, key: MessageKey, value: V) -> Option<V> {
        self.entries.insert(key, value)
    }

    /// Drop every entry failing the predicate; returns the evicted values
    /// (so the caller can DROP the backing tables).
    pub fn retain_or_evict(&mut self, mut keep: impl FnMut(&MessageKey) -> bool) -> Vec<V> {
        let mut evicted = Vec::new();
        let keys: Vec<MessageKey> = self.entries.keys().filter(|k| !keep(k)).cloned().collect();
        for k in keys {
            if let Some(v) = self.entries.remove(&k) {
                evicted.push(v);
                self.stats.evictions += 1;
            }
        }
        evicted
    }

    /// Drain everything (end of training).
    pub fn drain(&mut self) -> Vec<V> {
        self.stats.evictions += self.entries.len() as u64;
        self.entries.drain().map(|(_, v)| v).collect()
    }
}

/// Build a canonical signature from a set of predicate strings: order
/// insensitive, so `σ1 ∧ σ2` and `σ2 ∧ σ1` hit the same entry.
pub fn signature(predicates: &[String]) -> String {
    let mut sorted: Vec<&str> = predicates.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    sorted.join(" AND ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(from: RelId, to: RelId, sig: &str) -> MessageKey {
        MessageKey {
            from,
            to,
            signature: sig.to_string(),
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c: MessageCache<String> = MessageCache::new();
        assert!(c.get(&key(0, 1, "")).is_none());
        c.insert(key(0, 1, ""), "m0".into());
        assert_eq!(c.get(&key(0, 1, "")), Some(&"m0".to_string()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn signature_is_order_insensitive() {
        let a = signature(&["d > 1".into(), "c = 2".into()]);
        let b = signature(&["c = 2".into(), "d > 1".into()]);
        assert_eq!(a, b);
        assert_ne!(a, signature(&["c = 2".into()]));
    }

    #[test]
    fn eviction_returns_payloads() {
        let mut c: MessageCache<i32> = MessageCache::new();
        c.insert(key(0, 1, ""), 10);
        c.insert(key(1, 2, ""), 20);
        c.insert(key(1, 2, "d > 1"), 30);
        let evicted = c.retain_or_evict(|k| k.signature.is_empty());
        assert_eq!(evicted, vec![30]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
    }
}
