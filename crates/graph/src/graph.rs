//! The join graph and message-passing schedules.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Relation identifier (index into the graph's relation list).
pub type RelId = usize;

/// Multiplicity of an edge, read in the direction `a → b`:
/// `ManyToOne` means many `a`-rows join one `b`-row (a is on the fact
/// side), which is the shape of fact→dimension edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    OneToOne,
    ManyToOne,
    OneToMany,
    ManyToMany,
}

impl Multiplicity {
    pub fn reversed(self) -> Multiplicity {
        match self {
            Multiplicity::ManyToOne => Multiplicity::OneToMany,
            Multiplicity::OneToMany => Multiplicity::ManyToOne,
            other => other,
        }
    }
}

/// Errors from graph construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    DuplicateRelation(String),
    UnknownRelation(String),
    DuplicateFeature(String),
    Disconnected,
    Cyclic,
    SelfEdge(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateRelation(r) => write!(f, "duplicate relation {r}"),
            GraphError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            GraphError::DuplicateFeature(x) => {
                write!(f, "feature {x} appears in more than one relation")
            }
            GraphError::Disconnected => write!(f, "join graph is not connected"),
            GraphError::Cyclic => write!(f, "join graph is cyclic (needs hypertree decomposition)"),
            GraphError::SelfEdge(r) => write!(f, "self edge on {r}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One relation in the graph.
#[derive(Debug, Clone)]
pub struct Relation {
    pub name: String,
    /// Feature attributes usable as tree splits.
    pub features: Vec<String>,
}

/// One undirected join edge.
#[derive(Debug, Clone)]
pub struct Edge {
    pub a: RelId,
    pub b: RelId,
    pub keys: Vec<String>,
    /// Multiplicity in the `a → b` direction.
    pub multiplicity: Multiplicity,
}

/// A directed message in a schedule: relation `from` aggregates itself
/// joined with its incoming messages, groups by `keys`, and sends to `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub from: RelId,
    pub to: RelId,
    /// Join keys shared between `from` and `to`.
    pub keys: Vec<String>,
}

/// A join graph over named relations.
#[derive(Debug, Clone, Default)]
pub struct JoinGraph {
    relations: Vec<Relation>,
    edges: Vec<Edge>,
    by_name: HashMap<String, RelId>,
}

impl JoinGraph {
    pub fn new() -> JoinGraph {
        JoinGraph::default()
    }

    /// Add a relation with its feature attributes.
    pub fn add_relation(&mut self, name: &str, features: &[&str]) -> Result<RelId, GraphError> {
        let key = name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(GraphError::DuplicateRelation(name.to_string()));
        }
        for f in features {
            if self.relation_of_feature(f).is_some() {
                return Err(GraphError::DuplicateFeature((*f).to_string()));
            }
        }
        let id = self.relations.len();
        self.relations.push(Relation {
            name: name.to_string(),
            features: features.iter().map(|s| s.to_string()).collect(),
        });
        self.by_name.insert(key, id);
        Ok(id)
    }

    /// Add an N-to-1 edge (fact side `a`, dimension side `b`) — the common
    /// snowflake shape.
    pub fn add_edge(&mut self, a: &str, b: &str, keys: &[&str]) -> Result<(), GraphError> {
        self.add_edge_with(a, b, keys, Multiplicity::ManyToOne)
    }

    /// Add an edge with an explicit multiplicity in the `a → b` direction.
    pub fn add_edge_with(
        &mut self,
        a: &str,
        b: &str,
        keys: &[&str],
        multiplicity: Multiplicity,
    ) -> Result<(), GraphError> {
        let ia = self.rel_id(a)?;
        let ib = self.rel_id(b)?;
        if ia == ib {
            return Err(GraphError::SelfEdge(a.to_string()));
        }
        self.edges.push(Edge {
            a: ia,
            b: ib,
            keys: keys.iter().map(|s| s.to_string()).collect(),
            multiplicity,
        });
        Ok(())
    }

    pub fn rel_id(&self, name: &str) -> Result<RelId, GraphError> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| GraphError::UnknownRelation(name.to_string()))
    }

    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id]
    }

    pub fn name(&self, id: RelId) -> &str {
        &self.relations[id].name
    }

    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn relations(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations.iter().enumerate()
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// All features across relations.
    pub fn all_features(&self) -> Vec<(String, RelId)> {
        let mut out = Vec::new();
        for (id, r) in self.relations.iter().enumerate() {
            for f in &r.features {
                out.push((f.clone(), id));
            }
        }
        out
    }

    /// Which relation holds a feature.
    pub fn relation_of_feature(&self, feature: &str) -> Option<RelId> {
        for (id, r) in self.relations.iter().enumerate() {
            if r.features.iter().any(|f| f.eq_ignore_ascii_case(feature)) {
                return Some(id);
            }
        }
        None
    }

    /// Neighbors of a relation with the connecting edge index.
    pub fn neighbors(&self, id: RelId) -> Vec<(RelId, usize)> {
        let mut out = Vec::new();
        for (ei, e) in self.edges.iter().enumerate() {
            if e.a == id {
                out.push((e.b, ei));
            } else if e.b == id {
                out.push((e.a, ei));
            }
        }
        out
    }

    /// Multiplicity of the edge read in the `from → to` direction.
    pub fn multiplicity(&self, from: RelId, to: RelId) -> Option<Multiplicity> {
        for e in &self.edges {
            if e.a == from && e.b == to {
                return Some(e.multiplicity);
            }
            if e.b == from && e.a == to {
                return Some(e.multiplicity.reversed());
            }
        }
        None
    }

    /// Join keys between two adjacent relations.
    pub fn join_keys(&self, a: RelId, b: RelId) -> Option<&[String]> {
        for e in &self.edges {
            if (e.a == a && e.b == b) || (e.a == b && e.b == a) {
                return Some(&e.keys);
            }
        }
        None
    }

    /// Validate connectivity and acyclicity (message passing needs a tree;
    /// cyclic graphs must be pre-joined via hypertree decomposition first).
    pub fn validate_tree(&self) -> Result<(), GraphError> {
        if self.relations.is_empty() {
            return Ok(());
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        if self.is_cyclic() {
            return Err(GraphError::Cyclic);
        }
        Ok(())
    }

    pub fn is_connected(&self) -> bool {
        if self.relations.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.relations.len()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.relations.len()
    }

    pub fn is_cyclic(&self) -> bool {
        // A connected graph is a tree iff |E| = |V| - 1; for possibly
        // disconnected graphs use union-find on edges.
        let mut parent: Vec<usize> = (0..self.relations.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for e in &self.edges {
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            if ra == rb {
                return true;
            }
            parent[ra] = rb;
        }
        false
    }

    /// Relations on one cycle (for hypertree decomposition: pre-join these
    /// and replace them with the join result). `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<RelId>> {
        let n = self.relations.len();
        let mut parent_edge: Vec<Option<(RelId, usize)>> = vec![None; n];
        let mut state = vec![0u8; n]; // 0 unseen, 1 in-stack, 2 done
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, usize::MAX)];
            while let Some(&(u, via)) = stack.last() {
                if state[u] == 0 {
                    state[u] = 1;
                    for (v, ei) in self.neighbors(u) {
                        if ei == via {
                            continue;
                        }
                        if state[v] == 1 {
                            // Found a back edge v..u: reconstruct the cycle.
                            let mut cycle = vec![u];
                            let mut cur = u;
                            while cur != v {
                                let (p, _) = parent_edge[cur]?;
                                cycle.push(p);
                                cur = p;
                            }
                            return Some(cycle);
                        }
                        if state[v] == 0 {
                            parent_edge[v] = Some((u, ei));
                            stack.push((v, ei));
                        }
                    }
                } else {
                    state[u] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Leaf-to-root message schedule: every relation except the root sends
    /// exactly one message toward the root; a relation sends only after
    /// all its children have.
    pub fn message_schedule(&self, root: RelId) -> Result<Vec<Message>, GraphError> {
        self.validate_tree()?;
        let n = self.relations.len();
        // BFS from root to direct edges, then emit in reverse BFS order.
        let mut order = Vec::with_capacity(n);
        let mut parent: Vec<Option<RelId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([root]);
        seen[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        let mut schedule = Vec::with_capacity(n.saturating_sub(1));
        for &u in order.iter().rev() {
            if let Some(p) = parent[u] {
                schedule.push(Message {
                    from: u,
                    to: p,
                    keys: self
                        .join_keys(u, p)
                        .expect("adjacent relations share an edge")
                        .to_vec(),
                });
            }
        }
        Ok(schedule)
    }

    /// Path of relations from `from` to `to` (inclusive) in the join tree.
    pub fn path(&self, from: RelId, to: RelId) -> Option<Vec<RelId>> {
        let n = self.relations.len();
        let mut parent: Vec<Option<RelId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([from]);
        seen[from] = true;
        while let Some(u) = queue.pop_front() {
            if u == to {
                let mut path = vec![to];
                let mut cur = to;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Messages of a root-directed schedule that are *invalidated* when a
    /// predicate is applied to `changed`: exactly those sent from relations
    /// whose subtree (looking away from the root) contains `changed` —
    /// i.e. the messages along the path `changed → root`. Everything else
    /// can be reused by the child tree node (Section 5.5.1, Example 7).
    pub fn invalidated_messages(
        &self,
        schedule: &[Message],
        root: RelId,
        changed: RelId,
    ) -> Vec<Message> {
        let Some(path) = self.path(changed, root) else {
            return schedule.to_vec();
        };
        schedule
            .iter()
            .filter(|m| path.windows(2).any(|w| m.from == w[0] && m.to == w[1]))
            .cloned()
            .collect()
    }

    /// Breadth-first ancestral sampling order from a root: each entry is a
    /// relation plus the join keys shared with its (already sampled)
    /// parent (Section 5.5.2).
    pub fn sampling_order(&self, root: RelId) -> Vec<(RelId, Vec<String>)> {
        let n = self.relations.len();
        let mut out = vec![(root, Vec::new())];
        let mut seen = vec![false; n];
        seen[root] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    out.push((v, self.join_keys(u, v).expect("edge").to_vec()));
                    queue.push_back(v);
                }
            }
        }
        out
    }

    /// Is this a snowflake schema rooted at `fact`: every edge, oriented
    /// away from `fact`, is N-to-1 (or 1-to-1)? Then `fact` is 1-1 with
    /// the full join result (Section 4.1).
    pub fn is_snowflake_rooted_at(&self, fact: RelId) -> bool {
        if self.validate_tree().is_err() {
            return false;
        }
        let n = self.relations.len();
        let mut seen = vec![false; n];
        seen[fact] = true;
        let mut queue = VecDeque::from([fact]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    match self.multiplicity(u, v) {
                        Some(Multiplicity::ManyToOne) | Some(Multiplicity::OneToOne) => {}
                        _ => return false,
                    }
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        true
    }

    /// The unique snowflake fact table, if one exists.
    pub fn snowflake_fact(&self) -> Option<RelId> {
        (0..self.relations.len()).find(|&r| self.is_snowflake_rooted_at(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The R − S − T chain of paper Figure 1.
    fn chain() -> JoinGraph {
        let mut g = JoinGraph::new();
        g.add_relation("R", &["B"]).unwrap();
        g.add_relation("S", &["C"]).unwrap();
        g.add_relation("T", &["D"]).unwrap();
        g.add_edge_with("R", "S", &["A"], Multiplicity::ManyToMany)
            .unwrap();
        g.add_edge_with("S", "T", &["A"], Multiplicity::ManyToMany)
            .unwrap();
        g
    }

    /// Favorita-like star: sales fact + 5 dims.
    fn star() -> JoinGraph {
        let mut g = JoinGraph::new();
        g.add_relation("sales", &[]).unwrap();
        for (d, f) in [
            ("items", "f_item"),
            ("stores", "f_store"),
            ("trans", "f_trans"),
            ("oil", "f_oil"),
            ("dates", "f_date"),
        ] {
            g.add_relation(d, &[f]).unwrap();
            g.add_edge("sales", d, &[&format!("{d}_id")]).unwrap();
        }
        g
    }

    #[test]
    fn schedule_is_leaf_first() {
        let g = chain();
        let t = g.rel_id("T").unwrap();
        let sched = g.message_schedule(t).unwrap();
        assert_eq!(sched.len(), 2);
        // R → S must come before S → T.
        assert_eq!(sched[0].from, g.rel_id("R").unwrap());
        assert_eq!(sched[0].to, g.rel_id("S").unwrap());
        assert_eq!(sched[1].from, g.rel_id("S").unwrap());
        assert_eq!(sched[1].to, t);
    }

    #[test]
    fn star_schedule_has_one_message_per_dim() {
        let g = star();
        let fact = g.rel_id("sales").unwrap();
        let sched = g.message_schedule(fact).unwrap();
        assert_eq!(sched.len(), 5);
        assert!(sched.iter().all(|m| m.to == fact));
    }

    #[test]
    fn cycle_detection_and_extraction() {
        let mut g = chain();
        assert!(!g.is_cyclic());
        assert!(g.find_cycle().is_none());
        // Close the cycle like the update relation U does (Figure 2c).
        g.add_relation("U", &[]).unwrap();
        g.add_edge_with("R", "U", &["B"], Multiplicity::ManyToMany)
            .unwrap();
        g.add_edge_with("T", "U", &["D"], Multiplicity::ManyToMany)
            .unwrap();
        assert!(g.is_cyclic());
        let cycle = g.find_cycle().unwrap();
        assert!(cycle.len() >= 3);
        assert!(g.message_schedule(0).is_err());
    }

    #[test]
    fn snowflake_detection() {
        let g = star();
        assert_eq!(g.snowflake_fact(), Some(g.rel_id("sales").unwrap()));
        let g2 = chain(); // M-N everywhere → not a snowflake
        assert_eq!(g2.snowflake_fact(), None);
    }

    #[test]
    fn snowflake_with_chained_dimension() {
        // sales → dates → holidays (N-1 then N-1): still snowflake.
        let mut g = JoinGraph::new();
        g.add_relation("sales", &[]).unwrap();
        g.add_relation("dates", &["weekend"]).unwrap();
        g.add_relation("holidays", &["holiday"]).unwrap();
        g.add_edge("sales", "dates", &["date_id"]).unwrap();
        g.add_edge("dates", "holidays", &["holiday_id"]).unwrap();
        assert_eq!(g.snowflake_fact(), Some(0));
        assert!(!g.is_snowflake_rooted_at(1), "dates sees 1-N toward sales");
    }

    #[test]
    fn invalidated_messages_follow_path_to_root() {
        let g = chain();
        let (r, s, t) = (0, 1, 2);
        let sched = g.message_schedule(t).unwrap();
        // Split on R's feature: both R→S and S→T are invalidated.
        let bad = g.invalidated_messages(&sched, t, r);
        assert_eq!(bad.len(), 2);
        // Split on T's feature (the root): nothing upstream changes.
        let bad = g.invalidated_messages(&sched, t, t);
        assert!(bad.is_empty());
        // Split on S: only S→T.
        let bad = g.invalidated_messages(&sched, t, s);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].from, s);
    }

    #[test]
    fn feature_lookup_and_duplicates() {
        let g = star();
        assert_eq!(
            g.relation_of_feature("f_oil"),
            Some(g.rel_id("oil").unwrap())
        );
        assert_eq!(g.relation_of_feature("nope"), None);
        let mut g2 = JoinGraph::new();
        g2.add_relation("a", &["x"]).unwrap();
        assert_eq!(
            g2.add_relation("b", &["x"]).unwrap_err(),
            GraphError::DuplicateFeature("x".into())
        );
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut g = JoinGraph::new();
        g.add_relation("a", &[]).unwrap();
        g.add_relation("b", &[]).unwrap();
        assert_eq!(g.validate_tree().unwrap_err(), GraphError::Disconnected);
    }

    #[test]
    fn sampling_order_starts_at_root_and_covers_graph() {
        let g = star();
        let order = g.sampling_order(g.rel_id("sales").unwrap());
        assert_eq!(order.len(), 6);
        assert_eq!(order[0].0, g.rel_id("sales").unwrap());
        assert!(order[0].1.is_empty());
        assert!(order[1..].iter().all(|(_, keys)| keys.len() == 1));
    }

    #[test]
    fn path_queries() {
        let g = chain();
        assert_eq!(g.path(0, 2), Some(vec![0, 1, 2]));
        assert_eq!(g.path(2, 2), Some(vec![2]));
    }
}
