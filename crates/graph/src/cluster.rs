//! Clustered Predicate Trees (CPT) for galaxy schemas (Section 4.2.2).
//!
//! Galaxy schemas have multiple fact tables with M-N relationships; update
//! relations would accumulate cycles over boosting iterations. CPT
//! clusters the relations so that, within a cluster, a single local fact
//! table holds N-to-1 paths to every other member — leaf predicates can
//! then be rewritten as semi-joins against that fact table and residual
//! updates stay cycle-free. During training the root split may use any
//! feature; subsequent splits of the same tree are confined to the chosen
//! cluster (paper Example 5 / Figure 3).

use crate::graph::{JoinGraph, Multiplicity, RelId};

/// One CPT cluster: a local fact table plus all members reachable from it
/// over N-to-1 (or 1-to-1) edges without passing through another fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    pub fact: RelId,
    /// All members, including the fact itself.
    pub members: Vec<RelId>,
}

impl Cluster {
    pub fn contains(&self, rel: RelId) -> bool {
        self.members.contains(&rel)
    }

    /// Features available inside this cluster.
    pub fn features(&self, graph: &JoinGraph) -> Vec<String> {
        let mut out = Vec::new();
        for &m in &self.members {
            out.extend(graph.relation(m).features.iter().cloned());
        }
        out
    }
}

/// Is `rel` a *local fact*: never on the `1` side of any incident edge?
/// (Every neighbor sees it as N-to-1 or M-to-N from `rel`'s perspective.)
fn is_local_fact(graph: &JoinGraph, rel: RelId) -> bool {
    let neighbors = graph.neighbors(rel);
    if neighbors.is_empty() {
        return true;
    }
    neighbors.iter().all(|&(other, _)| {
        matches!(
            graph.multiplicity(rel, other),
            Some(Multiplicity::ManyToOne)
                | Some(Multiplicity::ManyToMany)
                | Some(Multiplicity::OneToOne)
        )
    })
}

/// Compute the CPT clusters of a join graph. For a snowflake schema this
/// returns a single cluster covering everything; for a galaxy schema one
/// cluster per local fact table. Dimensions shared between facts appear
/// in multiple clusters (e.g. `Person` in both the `Cast Info` and
/// `Person Info` clusters of IMDB).
pub fn clusters(graph: &JoinGraph) -> Vec<Cluster> {
    let mut out = Vec::new();
    for (rel, _) in graph.relations() {
        if !is_local_fact(graph, rel) {
            continue;
        }
        // Grow the cluster over N-to-1 edges away from the fact.
        let mut members = vec![rel];
        let mut queue = vec![rel];
        while let Some(u) = queue.pop() {
            for (v, _) in graph.neighbors(u) {
                if members.contains(&v) {
                    continue;
                }
                if matches!(
                    graph.multiplicity(u, v),
                    Some(Multiplicity::ManyToOne) | Some(Multiplicity::OneToOne)
                ) {
                    members.push(v);
                    queue.push(v);
                }
            }
        }
        members.sort_unstable();
        out.push(Cluster { fact: rel, members });
    }
    // Deduplicate identical clusters (can happen with 1-1 edges).
    out.dedup_by(|a, b| a.members == b.members);
    out
}

/// The cluster whose members include the relation holding `feature`
/// (used to pick a tree's cluster from its root split).
pub fn cluster_of_feature<'a>(
    clusters: &'a [Cluster],
    graph: &JoinGraph,
    feature: &str,
) -> Option<&'a Cluster> {
    let rel = graph.relation_of_feature(feature)?;
    clusters.iter().find(|c| c.contains(rel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::JoinGraph;

    /// A miniature IMDB-like galaxy: two fact tables (cast_info,
    /// person_info) sharing the person dimension, plus movie under
    /// cast_info.
    fn galaxy() -> JoinGraph {
        let mut g = JoinGraph::new();
        g.add_relation("cast_info", &["role"]).unwrap();
        g.add_relation("person_info", &["age"]).unwrap();
        g.add_relation("person", &["gender"]).unwrap();
        g.add_relation("movie", &["year"]).unwrap();
        g.add_edge("cast_info", "person", &["person_id"]).unwrap();
        g.add_edge("cast_info", "movie", &["movie_id"]).unwrap();
        g.add_edge("person_info", "person", &["person_id"]).unwrap();
        g
    }

    #[test]
    fn galaxy_has_two_clusters_sharing_person() {
        let g = galaxy();
        let cs = clusters(&g);
        assert_eq!(cs.len(), 2);
        let cast = cs
            .iter()
            .find(|c| c.fact == g.rel_id("cast_info").unwrap())
            .unwrap();
        let pinfo = cs
            .iter()
            .find(|c| c.fact == g.rel_id("person_info").unwrap())
            .unwrap();
        let person = g.rel_id("person").unwrap();
        assert!(cast.contains(person));
        assert!(pinfo.contains(person));
        assert!(cast.contains(g.rel_id("movie").unwrap()));
        assert!(!pinfo.contains(g.rel_id("movie").unwrap()));
    }

    #[test]
    fn snowflake_is_one_cluster() {
        let mut g = JoinGraph::new();
        g.add_relation("sales", &[]).unwrap();
        g.add_relation("items", &["f_item"]).unwrap();
        g.add_relation("stores", &["f_store"]).unwrap();
        g.add_edge("sales", "items", &["item_id"]).unwrap();
        g.add_edge("sales", "stores", &["store_id"]).unwrap();
        let cs = clusters(&g);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].fact, g.rel_id("sales").unwrap());
        assert_eq!(cs[0].members.len(), 3);
    }

    #[test]
    fn cluster_features_and_lookup() {
        let g = galaxy();
        let cs = clusters(&g);
        let c = cluster_of_feature(&cs, &g, "age").unwrap();
        assert_eq!(c.fact, g.rel_id("person_info").unwrap());
        let mut feats = c.features(&g);
        feats.sort();
        assert_eq!(feats, vec!["age".to_string(), "gender".to_string()]);
        assert!(cluster_of_feature(&cs, &g, "nope").is_none());
    }

    #[test]
    fn shared_dim_feature_resolves_to_some_cluster() {
        let g = galaxy();
        let cs = clusters(&g);
        let c = cluster_of_feature(&cs, &g, "gender").unwrap();
        assert!(c.contains(g.rel_id("person").unwrap()));
    }
}
