//! Join graphs and message passing for factorized learning.
//!
//! A training dataset in JoinBoost is a *join graph*: relations plus join
//! edges (Section 5.1). Factorized aggregation evaluates a group-by query
//! by passing messages along a tree that spans the join graph
//! (Section 3.1). This crate provides:
//!
//! * [`graph::JoinGraph`] — relations, features, edges with declared
//!   multiplicity; acyclicity/connectivity validation; message-passing
//!   schedules toward any root; path queries used for cross-node message
//!   reuse (Section 5.5.1); ancestral-sampling orders (Section 5.5.2);
//!   cycle detection plus the relation groups a hypertree decomposition
//!   would pre-join (Section 4.2.2);
//! * [`cluster`] — Clustered Predicate Tree (CPT) clustering of galaxy
//!   schemas: each cluster is a local fact table plus the relations it
//!   reaches over N-to-1 edges, within which leaf predicates can always be
//!   pushed to the cluster's fact table without creating cycles;
//! * [`cache::MessageCache`] — the bidirectional message cache that lets
//!   parent and child tree nodes share messages, the optimization that
//!   gives the paper its 3× improvement over per-node batching.

pub mod cache;
pub mod cluster;
pub mod graph;

pub use cache::MessageCache;
pub use cluster::{clusters, Cluster};
pub use graph::{GraphError, JoinGraph, Message, Multiplicity, RelId};
